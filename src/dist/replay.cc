#include "dist/replay.h"

#include <algorithm>
#include <utility>

namespace spca::dist {

JobCost ComputeJobCost(const ClusterSpec& spec, EngineMode mode,
                       const std::vector<uint64_t>& task_flops,
                       double flop_scale, double input_bytes,
                       double intermediate_bytes, double result_bytes,
                       double backoff_sec,
                       const std::vector<uint64_t>* extra_load_flops) {
  JobCost cost;
  cost.launch_sec = spec.job_launch_sec(mode) + backoff_sec;

  // Schedule tasks onto cores (in-order greedy onto the least-loaded core;
  // deterministic and close to LPT for near-equal tasks). Speculative
  // duplicate occupancy is scheduled after the tasks, in the same order on
  // both the live and the replay path.
  std::vector<double> core_load(std::max(1, spec.total_cores()), 0.0);
  const auto schedule = [&](const std::vector<uint64_t>& load) {
    for (const uint64_t flops : load) {
      auto min_it = std::min_element(core_load.begin(), core_load.end());
      *min_it += static_cast<double>(flops) * flop_scale /
                 spec.flops_per_sec_per_core;
    }
  };
  schedule(task_flops);
  if (extra_load_flops != nullptr) schedule(*extra_load_flops);
  cost.compute_sec = *std::max_element(core_load.begin(), core_load.end());

  // Input is read from the DFS at aggregate disk bandwidth (0 bytes when
  // the RDD is cached). Intermediate data goes through the DFS (write then
  // read) on MapReduce and through memory/network on Spark. Results flow
  // to the driver over its single node's link either way.
  const double input_sec = input_bytes / spec.total_disk_bandwidth();
  double intermediate_sec;
  if (mode == EngineMode::kMapReduce) {
    intermediate_sec =
        2.0 * intermediate_bytes / spec.total_disk_bandwidth() +
        intermediate_bytes / spec.total_network_bandwidth();
  } else {
    intermediate_sec = intermediate_bytes / spec.total_network_bandwidth();
  }
  const double result_sec = result_bytes / spec.network_bandwidth_per_node;
  cost.data_sec = input_sec + intermediate_sec + result_sec;
  return cost;
}

JobCost ReplayJobCost(const JobTrace& trace, const ClusterSpec& spec,
                      EngineMode mode, const ReplayScales& scales) {
  return ComputeJobCost(
      spec, mode, trace.task_flops, scales.flops,
      trace.charged_input_bytes * scales.input_bytes,
      static_cast<double>(trace.stats.intermediate_bytes) *
          scales.intermediate_bytes,
      static_cast<double>(trace.stats.result_bytes) * scales.result_bytes,
      trace.backoff_sec,
      trace.speculative_flops.empty() ? nullptr : &trace.speculative_flops);
}

JobCost ReplayJobCostWithFaults(const JobTrace& trace,
                                const ClusterSpec& spec, EngineMode mode,
                                const ReplayScales& scales,
                                const FaultPlan& plan, uint64_t job_index) {
  if (!plan.active()) return ReplayJobCost(trace, spec, mode, scales);
  const size_t num_tasks = trace.task_flops.size();
  // Failed attempts re-ship their task's output. When the trace recorded
  // per-task bytes, each injected retry re-ships exactly its own task's
  // bytes — matching what a live run under the same plan charges even for
  // jobs with ragged task outputs. Older traces only carry per-job byte
  // totals; each retry then re-ships the per-task average, which is exact
  // only when the job's tasks emit uniformly.
  const bool have_task_bytes = trace.task_intermediate_bytes.size() ==
                                   num_tasks &&
                               trace.task_result_bytes.size() == num_tasks;
  std::vector<uint64_t> task_flops;
  task_flops.reserve(num_tasks);
  // Injected speculative duplicates are appended after any duplicates the
  // trace itself recorded (consistent with retries: injecting into an
  // already-faulted trace charges both).
  std::vector<uint64_t> extra_load = trace.speculative_flops;
  uint64_t extra_attempts = 0;
  double intermediate_bytes = 0.0;
  double result_bytes = 0.0;
  for (size_t task = 0; task < num_tasks; ++task) {
    const TaskFault fault = plan.Draw(job_index, task);
    const TaskCharge charge = ResolveTaskCharge(
        trace.task_flops[task], fault, plan.spec().speculation);
    task_flops.push_back(charge.committed_flops);
    if (charge.speculated) extra_load.push_back(charge.duplicate_flops);
    const uint64_t extra = static_cast<uint64_t>(fault.extra_attempts);
    extra_attempts += extra;
    if (have_task_bytes) {
      const double factor = 1.0 + static_cast<double>(extra);
      intermediate_bytes +=
          static_cast<double>(trace.task_intermediate_bytes[task]) * factor;
      result_bytes +=
          static_cast<double>(trace.task_result_bytes[task]) * factor;
    }
  }
  if (!have_task_bytes) {
    const double reship_factor =
        num_tasks == 0 ? 0.0
                       : static_cast<double>(extra_attempts) /
                             static_cast<double>(num_tasks);
    intermediate_bytes = static_cast<double>(trace.stats.intermediate_bytes) *
                         (1.0 + reship_factor);
    result_bytes =
        static_cast<double>(trace.stats.result_bytes) * (1.0 + reship_factor);
  }
  return ComputeJobCost(spec, mode, task_flops, scales.flops,
                        trace.charged_input_bytes * scales.input_bytes,
                        intermediate_bytes * scales.intermediate_bytes,
                        result_bytes * scales.result_bytes,
                        trace.backoff_sec + plan.BackoffSeconds(extra_attempts),
                        extra_load.empty() ? nullptr : &extra_load);
}

double ReplayJobSeconds(const JobTrace& trace, const ClusterSpec& spec,
                        EngineMode mode, const ReplayScales& scales) {
  return ReplayJobCost(trace, spec, mode, scales).Total();
}

double ReplayJob(const JobTrace& trace, const ClusterSpec& spec,
                 EngineMode mode, const ReplayScales& scales,
                 obs::Registry* registry, double sim_start_sec,
                 uint64_t parent_span_id, const FaultPlan* fault_plan,
                 uint64_t job_index) {
  const bool injecting = fault_plan != nullptr && fault_plan->active();
  const JobCost cost =
      injecting ? ReplayJobCostWithFaults(trace, spec, mode, scales,
                                          *fault_plan, job_index)
                : ReplayJobCost(trace, spec, mode, scales);
  if (registry != nullptr) {
    std::vector<obs::Attribute> attrs;
    attrs.push_back({"tasks", static_cast<uint64_t>(trace.num_tasks)});
    if (!trace.phase.empty()) attrs.push_back({"phase", trace.phase});
    attrs.push_back({"sim_seconds", cost.Total()});
    attrs.push_back({"scale_flops", scales.flops});
    attrs.push_back({"scale_input_bytes", scales.input_bytes});
    attrs.push_back({"scale_intermediate_bytes", scales.intermediate_bytes});
    attrs.push_back({"scale_result_bytes", scales.result_bytes});
    if (injecting) {
      uint64_t retries = 0;
      uint64_t stragglers = 0;
      uint64_t node_losses = 0;
      uint64_t speculated = 0;
      for (size_t task = 0; task < trace.task_flops.size(); ++task) {
        const TaskFault fault = fault_plan->Draw(job_index, task);
        retries += static_cast<uint64_t>(fault.extra_attempts);
        if (fault.slowdown > 1.0) ++stragglers;
        if (fault.node_loss) ++node_losses;
        if (ResolveTaskCharge(trace.task_flops[task], fault,
                              fault_plan->spec().speculation)
                .speculated) {
          ++speculated;
        }
      }
      attrs.push_back({"fault.retries", retries});
      attrs.push_back({"fault.straggler_tasks", stragglers});
      attrs.push_back({"fault.backoff_sec",
                       fault_plan->BackoffSeconds(retries)});
      if (fault_plan->spec().node_failure_probability > 0.0) {
        attrs.push_back({"fault.node_loss_tasks", node_losses});
      }
      if (fault_plan->spec().speculation.enabled) {
        attrs.push_back({"speculation.launched", speculated});
      }
    }
    const uint64_t job_span = registry->AddCompleteSpan(
        "replay." + trace.name, "replay_job", obs::Track::kSim, sim_start_sec,
        cost.Total(), parent_span_id, std::move(attrs));
    double cursor = sim_start_sec;
    registry->AddCompleteSpan("launch", "sim_phase", obs::Track::kSim, cursor,
                              cost.launch_sec, job_span);
    cursor += cost.launch_sec;
    registry->AddCompleteSpan("compute", "sim_phase", obs::Track::kSim, cursor,
                              cost.compute_sec, job_span);
    cursor += cost.compute_sec;
    registry->AddCompleteSpan("data", "sim_phase", obs::Track::kSim, cursor,
                              cost.data_sec, job_span);
    // A replayed job counts as a completed job for streaming exporters:
    // without this, a multi-thousand-job replayed sweep would accumulate
    // every synthetic span in the registry until the stream closes.
    registry->NotifyJobCompleted();
  }
  return cost.Total();
}

double ReplayRun(const std::vector<JobTrace>& traces, const CommStats& stats,
                 const ClusterSpec& spec, EngineMode mode,
                 const ReplayScalesFn& scales_for_job, obs::Registry* registry,
                 const std::string& label, double sim_start_sec,
                 const FaultPlan* fault_plan) {
  // Driver algebra and broadcasts are row-count independent; broadcasts
  // still pay one copy per node of the replay cluster.
  const double driver_sec =
      static_cast<double>(stats.driver_flops) / spec.flops_per_sec_per_core +
      static_cast<double>(stats.broadcast_bytes) * spec.num_nodes /
          spec.network_bandwidth_per_node;

  // The parent span needs its full extent up front (spans are immutable
  // once complete), so cost the jobs before emitting anything.
  std::vector<ReplayScales> scales;
  scales.reserve(traces.size());
  double jobs_sec = 0.0;
  const bool injecting = fault_plan != nullptr && fault_plan->active();
  for (size_t i = 0; i < traces.size(); ++i) {
    scales.push_back(scales_for_job(traces[i]));
    jobs_sec +=
        injecting
            ? ReplayJobCostWithFaults(traces[i], spec, mode, scales.back(),
                                      *fault_plan, i)
                  .Total()
            : ReplayJobSeconds(traces[i], spec, mode, scales.back());
  }
  const double total_sec = jobs_sec + driver_sec;

  uint64_t sweep_span = 0;
  if (registry != nullptr) {
    std::vector<obs::Attribute> attrs;
    attrs.push_back({"jobs", static_cast<uint64_t>(traces.size())});
    attrs.push_back({"mode", std::string(EngineModeToString(mode))});
    attrs.push_back({"sim_seconds", total_sec});
    sweep_span = registry->AddCompleteSpan("replay." + label, "replay_run",
                                           obs::Track::kSim, sim_start_sec,
                                           total_sec, 0, std::move(attrs));
  }

  double cursor = sim_start_sec;
  for (size_t i = 0; i < traces.size(); ++i) {
    cursor += ReplayJob(traces[i], spec, mode, scales[i], registry, cursor,
                        sweep_span, fault_plan, i);
  }
  if (registry != nullptr) {
    std::vector<obs::Attribute> attrs;
    attrs.push_back({"driver_flops", stats.driver_flops});
    attrs.push_back({"broadcast_bytes", stats.broadcast_bytes});
    registry->AddCompleteSpan("replay.driver", "replay_job", obs::Track::kSim,
                              cursor, driver_sec, sweep_span,
                              std::move(attrs));
  }
  return total_sec;
}

}  // namespace spca::dist
