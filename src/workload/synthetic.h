#ifndef SPCA_WORKLOAD_SYNTHETIC_H_
#define SPCA_WORKLOAD_SYNTHETIC_H_

#include <cstdint>

#include "linalg/dense_matrix.h"
#include "linalg/sparse_matrix.h"

namespace spca::workload {

/// Sparse binary bag-of-words generator: the synthetic stand-in for the
/// paper's Tweets and Bio-Text matrices (rows = documents, columns = words,
/// entries in {0,1}). Word popularity is Zipfian and documents are drawn
/// from a small number of latent topics, so the matrix has genuine
/// low-dimensional structure for PCA to find.
struct BagOfWordsConfig {
  size_t rows = 1000;
  size_t vocab = 1000;          // D
  double words_per_row = 12.0;  // mean document length (controls sparsity)
  double zipf_exponent = 1.05;  // word popularity skew
  size_t num_topics = 20;       // latent topics
  double topic_weight = 0.6;    // fraction of words drawn from the topic
  uint64_t seed = 42;
};

/// Generates a binary sparse matrix per the config. Deterministic in seed.
linalg::SparseMatrix GenerateBagOfWords(const BagOfWordsConfig& config);

/// Dense low-rank-plus-noise generator: Y = Z * W' + mean + noise, the
/// canonical PPCA generative model. Used by correctness tests (the fitted
/// subspace must match W) and accuracy benchmarks.
struct LowRankConfig {
  size_t rows = 500;
  size_t cols = 50;
  size_t rank = 5;
  double signal_stddev = 1.0;  // stddev of latent coordinates
  double noise_stddev = 0.1;   // isotropic noise (the PPCA ss)
  double mean_scale = 1.0;     // magnitude of the non-zero column means
  uint64_t seed = 7;
};

linalg::DenseMatrix GenerateLowRank(const LowRankConfig& config);

/// Dense spectra generator: the stand-in for the Diabetes NMR dataset
/// (few rows, tens of thousands of columns; each row is a smooth curve of
/// resonance peaks). Rows share a handful of prototype metabolite profiles,
/// again giving low-dimensional structure.
struct SpectraConfig {
  size_t rows = 353;
  size_t cols = 4096;    // frequencies
  size_t num_peaks = 24; // peaks per prototype
  size_t num_prototypes = 6;
  double noise_stddev = 0.02;
  uint64_t seed = 11;
};

linalg::DenseMatrix GenerateSpectra(const SpectraConfig& config);

/// Dense local-image-feature generator: the stand-in for the ImageNet SIFT
/// dataset (very many rows, 128 columns, non-negative real entries drawn
/// from a mixture of visual-word clusters).
struct ImageFeaturesConfig {
  size_t rows = 10000;
  size_t cols = 128;
  size_t num_clusters = 32;
  double cluster_stddev = 0.15;
  uint64_t seed = 13;
};

linalg::DenseMatrix GenerateImageFeatures(const ImageFeaturesConfig& config);

/// Dense sparse-signal generator: Y = Z * W' + mean + noise where each
/// ground-truth loading column of W has only `active_per_component`
/// non-zero rows (disjoint supports, cycled over the dimensions). The
/// regime the L1-thresholded sparse-loadings PPCA wins in: a dense fit
/// smears signal over all D loadings, the thresholded fit recovers the
/// supports and ships/serves proportionally less.
struct SparseSignalConfig {
  size_t rows = 1000;
  size_t cols = 64;
  size_t rank = 4;
  size_t active_per_component = 8;  // non-zero loadings per component
  double signal_stddev = 1.0;       // stddev of latent coordinates
  double loading_scale = 1.0;       // magnitude of the active loadings
  double noise_stddev = 0.05;       // isotropic noise
  double mean_scale = 0.5;          // magnitude of the column means
  uint64_t seed = 17;
};

linalg::DenseMatrix GenerateSparseSignal(const SparseSignalConfig& config);

/// Sparse low-rank-plus-noise generator: the canonical PPCA generative
/// model observed through random entry masking — each entry of the dense
/// Y = Z * W' + noise survives with probability `density`, producing a
/// genuinely sparse matrix with low-rank structure. The regime where
/// single-pass sketches (rand_svd) and entry sampling (Sparsifier) shine:
/// per-row work and shipped partials scale with nnz, not D.
struct SparseLowRankConfig {
  size_t rows = 2000;
  size_t cols = 200;
  size_t rank = 5;
  double density = 0.05;       // fraction of entries observed
  double signal_stddev = 1.0;  // stddev of latent coordinates
  double noise_stddev = 0.05;  // per-observed-entry noise
  uint64_t seed = 23;
};

linalg::SparseMatrix GenerateSparseLowRank(const SparseLowRankConfig& config);

}  // namespace spca::workload

#endif  // SPCA_WORKLOAD_SYNTHETIC_H_
