#ifndef SPCA_WORKLOAD_LOAD_GEN_H_
#define SPCA_WORKLOAD_LOAD_GEN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "linalg/dense_matrix.h"
#include "linalg/sparse_matrix.h"

namespace spca::workload {

/// Deterministic query/load generation for the serving benchmarks: a query
/// set shaped like the training workloads (Zipfian sparse bag-of-words rows
/// or dense Gaussian feature rows) plus an arrival-time schedule. Both are
/// pure functions of their seeds, so a load test is exactly reproducible —
/// the driver (spca_serve / bench_serve) replays the schedule against the
/// projection service and only the measured latencies vary run to run.

/// One query row; sparse unless `dense` is non-empty.
struct Query {
  linalg::SparseVector sparse;
  linalg::DenseVector dense;

  bool is_dense() const { return dense.size() > 0; }
  size_t nnz() const { return is_dense() ? dense.size() : sparse.nnz(); }
};

struct QuerySetConfig {
  size_t num_queries = 1000;
  size_t dim = 1000;  // D; must match the served model's input_dim
  bool dense = false;
  /// Sparse path: mean non-zeros per query (at least 1 is always drawn);
  /// indices follow a Zipf(zipf_exponent) popularity like the bag-of-words
  /// training generator, values are 1.0 (binary rows).
  double nnz_per_query = 12.0;
  double zipf_exponent = 1.05;
  uint64_t seed = 42;
};

/// Generates the query set. Deterministic in config.
std::vector<Query> GenerateQueries(const QuerySetConfig& config);

struct ArrivalScheduleConfig {
  /// Open-loop offered load in queries/second. <= 0 means closed-loop:
  /// every arrival is at offset 0 (the driver's concurrency, not the
  /// schedule, then paces the load).
  double qps = 1000.0;
  size_t num_arrivals = 1000;
  /// Poisson process (exponential inter-arrival gaps) when true; exactly
  /// uniform 1/qps spacing when false.
  bool poisson = true;
  uint64_t seed = 1;
  /// Burst spikes: every `burst_period_sec` of schedule time the offered
  /// rate multiplies by `burst_factor` for the first `burst_duration_sec`
  /// of the period (inter-arrival gaps shrink by the factor while the
  /// burst is on). Defaults leave the schedule flat — and, burst-off, the
  /// generated offsets are bit-identical to the pre-burst generator for
  /// the same seed (pinned by the determinism golden). Requires
  /// burst_factor >= 1.
  double burst_factor = 1.0;
  double burst_period_sec = 0.0;
  double burst_duration_sec = 0.0;
};

/// Arrival offsets in seconds from test start: num_arrivals values,
/// non-decreasing, starting at the first inter-arrival gap. Deterministic
/// in config.
std::vector<double> GenerateArrivalSchedule(const ArrivalScheduleConfig& config);

/// Multi-tenant load: every query carries a tenant id drawn from a
/// Zipf(tenant_zipf_exponent) popularity (tenant 0 hottest) and targets
/// the model that tenant is pinned to (tenant % models). With several
/// models spread across service shards by the consistent-hash router,
/// a skewed tenant mix exercises skewed shard load the way a hot tenant
/// would in production.
struct TenantMixConfig {
  size_t num_tenants = 8;
  double tenant_zipf_exponent = 1.0;
  /// Model names queries target; must be non-empty.
  std::vector<std::string> models;
  /// Row shape/count/seed of the underlying query set.
  QuerySetConfig query;
};

struct TaggedQuery {
  uint64_t tenant = 0;
  size_t model_index = 0;  // into TenantMixConfig::models
  Query query;
};

/// Generates query.num_queries tagged rows. Deterministic in config; the
/// row payloads are exactly GenerateQueries(config.query) — tenant tags
/// ride on an independent RNG stream so the rows stay bit-identical to
/// the untagged set (the socket-vs-in-process identity test leans on
/// this).
std::vector<TaggedQuery> GenerateTenantMix(const TenantMixConfig& config);

}  // namespace spca::workload

#endif  // SPCA_WORKLOAD_LOAD_GEN_H_
