#include "workload/io.h"

#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <vector>

namespace spca::workload {

using linalg::DenseMatrix;
using linalg::SparseEntry;
using linalg::SparseMatrix;

namespace {

constexpr uint64_t kSparseMagic = 0x53504341'53505233ULL;  // "SPCA SPR3"
constexpr uint64_t kDenseMagic = 0x53504341'444E5333ULL;   // "SPCA DNS3"

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

template <typename T>
bool WriteScalar(std::FILE* f, T value) {
  return std::fwrite(&value, sizeof(T), 1, f) == 1;
}

template <typename T>
bool ReadScalar(std::FILE* f, T* value) {
  return std::fread(value, sizeof(T), 1, f) == 1;
}

template <typename T>
bool WriteArray(std::FILE* f, const T* data, size_t count) {
  if (count == 0) return true;
  return std::fwrite(data, sizeof(T), count, f) == count;
}

template <typename T>
bool ReadArray(std::FILE* f, T* data, size_t count) {
  if (count == 0) return true;
  return std::fread(data, sizeof(T), count, f) == count;
}

}  // namespace

Status SaveSparseBinary(const SparseMatrix& matrix, const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "wb"));
  if (f == nullptr) return Status::NotFound("cannot open " + path);

  bool ok = WriteScalar(f.get(), kSparseMagic) &&
            WriteScalar<uint64_t>(f.get(), matrix.rows()) &&
            WriteScalar<uint64_t>(f.get(), matrix.cols()) &&
            WriteScalar<uint64_t>(f.get(), matrix.nnz());
  // Row lengths followed by (index, value) streams.
  for (size_t i = 0; ok && i < matrix.rows(); ++i) {
    const auto row = matrix.Row(i);
    ok = WriteScalar<uint64_t>(f.get(), row.nnz());
    for (const auto& e : row) {
      ok = ok && WriteScalar<uint32_t>(f.get(), e.index) &&
           WriteScalar<double>(f.get(), e.value);
    }
  }
  if (!ok) return Status::Internal("short write to " + path);
  return Status::Ok();
}

StatusOr<SparseMatrix> LoadSparseBinary(const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "rb"));
  if (f == nullptr) return Status::NotFound("cannot open " + path);

  uint64_t magic = 0, rows = 0, cols = 0, nnz = 0;
  if (!ReadScalar(f.get(), &magic) || magic != kSparseMagic) {
    return Status::InvalidArgument(path + " is not a sparse matrix file");
  }
  if (!ReadScalar(f.get(), &rows) || !ReadScalar(f.get(), &cols) ||
      !ReadScalar(f.get(), &nnz)) {
    return Status::Internal("truncated header in " + path);
  }
  SparseMatrix matrix(rows, cols);
  std::vector<SparseEntry> row;
  uint64_t total = 0;
  for (uint64_t i = 0; i < rows; ++i) {
    uint64_t count = 0;
    if (!ReadScalar(f.get(), &count)) {
      return Status::Internal("truncated row header in " + path);
    }
    row.clear();
    for (uint64_t k = 0; k < count; ++k) {
      uint32_t index = 0;
      double value = 0.0;
      if (!ReadScalar(f.get(), &index) || !ReadScalar(f.get(), &value)) {
        return Status::Internal("truncated entry in " + path);
      }
      row.push_back({index, value});
    }
    matrix.AppendRow(i, row);
    total += count;
  }
  if (total != nnz) {
    return Status::Internal("nnz mismatch in " + path);
  }
  return matrix;
}

Status SaveDenseBinary(const DenseMatrix& matrix, const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "wb"));
  if (f == nullptr) return Status::NotFound("cannot open " + path);
  bool ok = WriteScalar(f.get(), kDenseMagic) &&
            WriteScalar<uint64_t>(f.get(), matrix.rows()) &&
            WriteScalar<uint64_t>(f.get(), matrix.cols()) &&
            WriteArray(f.get(), matrix.data(), matrix.size());
  if (!ok) return Status::Internal("short write to " + path);
  return Status::Ok();
}

StatusOr<DenseMatrix> LoadDenseBinary(const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "rb"));
  if (f == nullptr) return Status::NotFound("cannot open " + path);
  uint64_t magic = 0, rows = 0, cols = 0;
  if (!ReadScalar(f.get(), &magic) || magic != kDenseMagic) {
    return Status::InvalidArgument(path + " is not a dense matrix file");
  }
  if (!ReadScalar(f.get(), &rows) || !ReadScalar(f.get(), &cols)) {
    return Status::Internal("truncated header in " + path);
  }
  DenseMatrix matrix(rows, cols);
  if (!ReadArray(f.get(), matrix.data(), matrix.size())) {
    return Status::Internal("truncated data in " + path);
  }
  return matrix;
}

Status SaveDenseText(const DenseMatrix& matrix, const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "w"));
  if (f == nullptr) return Status::NotFound("cannot open " + path);
  for (size_t i = 0; i < matrix.rows(); ++i) {
    for (size_t j = 0; j < matrix.cols(); ++j) {
      std::fprintf(f.get(), "%s%.17g", j == 0 ? "" : " ", matrix(i, j));
    }
    std::fprintf(f.get(), "\n");
  }
  return Status::Ok();
}

StatusOr<DenseMatrix> LoadDenseText(const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "r"));
  if (f == nullptr) return Status::NotFound("cannot open " + path);
  std::vector<std::vector<double>> rows;
  std::vector<double> row;
  std::string token;
  int c;
  auto flush_token = [&]() -> Status {
    if (token.empty()) return Status::Ok();
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') {
      return Status::InvalidArgument("bad value '" + token + "' in " + path);
    }
    row.push_back(value);
    token.clear();
    return Status::Ok();
  };
  while ((c = std::fgetc(f.get())) != EOF) {
    if (c == '\n') {
      SPCA_RETURN_IF_ERROR(flush_token());
      if (!row.empty()) rows.push_back(row);
      row.clear();
    } else if (c == ' ' || c == '\t' || c == '\r') {
      SPCA_RETURN_IF_ERROR(flush_token());
    } else {
      token.push_back(static_cast<char>(c));
    }
  }
  SPCA_RETURN_IF_ERROR(flush_token());
  if (!row.empty()) rows.push_back(row);
  if (rows.empty()) return DenseMatrix(0, 0);
  const size_t cols = rows[0].size();
  DenseMatrix matrix(rows.size(), cols);
  for (size_t i = 0; i < rows.size(); ++i) {
    if (rows[i].size() != cols) {
      return Status::InvalidArgument("ragged rows in " + path);
    }
    for (size_t j = 0; j < cols; ++j) matrix(i, j) = rows[i][j];
  }
  return matrix;
}

Status SaveSparseText(const SparseMatrix& matrix, const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "w"));
  if (f == nullptr) return Status::NotFound("cannot open " + path);
  for (size_t i = 0; i < matrix.rows(); ++i) {
    bool first = true;
    for (const auto& e : matrix.Row(i)) {
      std::fprintf(f.get(), "%s%" PRIu32 ":%.17g", first ? "" : " ", e.index,
                   e.value);
      first = false;
    }
    std::fprintf(f.get(), "\n");
  }
  return Status::Ok();
}

StatusOr<SparseMatrix> LoadSparseText(const std::string& path, size_t cols) {
  FilePtr f(std::fopen(path.c_str(), "r"));
  if (f == nullptr) return Status::NotFound("cannot open " + path);

  // First pass over lines accumulating rows.
  std::vector<std::vector<SparseEntry>> rows;
  std::vector<SparseEntry> row;
  std::string line;
  int c;
  std::string token;
  auto flush_token = [&]() -> Status {
    if (token.empty()) return Status::Ok();
    uint32_t index = 0;
    double value = 0.0;
    if (std::sscanf(token.c_str(), "%" SCNu32 ":%lg", &index, &value) != 2) {
      return Status::InvalidArgument("bad token '" + token + "' in " + path);
    }
    if (index >= cols) {
      return Status::InvalidArgument("index out of range in " + path);
    }
    row.push_back({index, value});
    token.clear();
    return Status::Ok();
  };

  while ((c = std::fgetc(f.get())) != EOF) {
    if (c == '\n') {
      SPCA_RETURN_IF_ERROR(flush_token());
      rows.push_back(row);
      row.clear();
    } else if (c == ' ' || c == '\t' || c == '\r') {
      SPCA_RETURN_IF_ERROR(flush_token());
    } else {
      token.push_back(static_cast<char>(c));
    }
  }
  SPCA_RETURN_IF_ERROR(flush_token());
  if (!row.empty()) rows.push_back(row);

  SparseMatrix matrix(rows.size(), cols);
  for (size_t i = 0; i < rows.size(); ++i) matrix.AppendRow(i, rows[i]);
  return matrix;
}

}  // namespace spca::workload
