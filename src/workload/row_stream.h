#ifndef SPCA_WORKLOAD_ROW_STREAM_H_
#define SPCA_WORKLOAD_ROW_STREAM_H_

#include <cstdint>

#include "common/rng.h"
#include "dist/dist_matrix.h"
#include "linalg/dense_matrix.h"

namespace spca::workload {

/// Configuration for RowStream.
struct RowStreamConfig {
  size_t dim = 256;
  size_t rank = 8;
  /// Rows per NextBatch() call.
  size_t batch_rows = 256;
  /// Partitions of each emitted batch DistMatrix.
  size_t partitions_per_batch = 4;
  double signal_stddev = 1.0;
  double noise_stddev = 0.05;
  double mean_scale = 1.0;
  /// Rotate the generating basis every this many batches (0 = stationary
  /// stream). The drift happens *before* the batch it applies to.
  size_t drift_every_batches = 0;
  /// Magnitude of each drift step: the basis becomes
  /// orthonormalize(W + drift_amount * G) with G a fresh Gaussian, so
  /// larger values rotate the true subspace further per drift event.
  double drift_amount = 0.15;
  uint64_t seed = 1;
};

/// Unbounded synthetic row stream with drift injection: rows are
/// y = W z + mean + noise with an orthonormal D x rank basis W that rotates
/// on a schedule. Deterministic function of the config (seed included), so
/// streaming runs replay exactly. basis() exposes the current ground-truth
/// subspace — the reference the drift metric compares published snapshots
/// against.
class RowStream {
 public:
  explicit RowStream(const RowStreamConfig& config);

  /// Generates the next batch (dense storage, config.batch_rows rows).
  dist::DistMatrix NextBatch();

  /// The current generating basis (D x rank, orthonormal columns).
  const linalg::DenseMatrix& basis() const { return basis_; }
  const linalg::DenseVector& mean() const { return mean_; }
  uint64_t rows_emitted() const { return rows_emitted_; }
  size_t batches_emitted() const { return batches_emitted_; }
  /// Number of drift events applied so far.
  size_t drifts_applied() const { return drifts_applied_; }

 private:
  void Drift();

  RowStreamConfig config_;
  Rng rng_;
  linalg::DenseMatrix basis_;  // D x rank, orthonormal
  linalg::DenseVector mean_;
  uint64_t rows_emitted_ = 0;
  size_t batches_emitted_ = 0;
  size_t drifts_applied_ = 0;
};

}  // namespace spca::workload

#endif  // SPCA_WORKLOAD_ROW_STREAM_H_
