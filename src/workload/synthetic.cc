#include "workload/synthetic.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/check.h"
#include "common/rng.h"

namespace spca::workload {

using linalg::DenseMatrix;
using linalg::SparseEntry;
using linalg::SparseMatrix;

SparseMatrix GenerateBagOfWords(const BagOfWordsConfig& config) {
  SPCA_CHECK_GT(config.vocab, 0u);
  SPCA_CHECK_GT(config.words_per_row, 0.0);
  Rng rng(config.seed);
  const ZipfSampler background(config.vocab, config.zipf_exponent);

  // Each topic is a Zipf distribution over a random permutation-ish window
  // of the vocabulary: topic t prefers words around a random center, which
  // gives distinct, overlapping word clusters.
  const size_t num_topics = std::max<size_t>(1, config.num_topics);
  std::vector<size_t> topic_centers(num_topics);
  for (auto& c : topic_centers) c = rng.NextUint64Below(config.vocab);
  const size_t topic_spread =
      std::max<size_t>(8, config.vocab / (2 * num_topics));
  const ZipfSampler topic_local(topic_spread, config.zipf_exponent);

  SparseMatrix matrix(config.rows, config.vocab);
  std::vector<uint32_t> words;
  std::vector<SparseEntry> row;
  for (size_t i = 0; i < config.rows; ++i) {
    // Document length: geometric-ish around the mean, at least one word.
    const double u = rng.NextDouble();
    const size_t length = static_cast<size_t>(
        1.0 + config.words_per_row * (-std::log(1.0 - u)) / std::log(2.0));
    const size_t topic = rng.NextUint64Below(num_topics);

    words.clear();
    for (size_t w = 0; w < length; ++w) {
      size_t word;
      if (rng.NextDouble() < config.topic_weight) {
        word = (topic_centers[topic] + topic_local.Sample(&rng)) % config.vocab;
      } else {
        word = background.Sample(&rng);
      }
      words.push_back(static_cast<uint32_t>(word));
    }
    std::sort(words.begin(), words.end());
    words.erase(std::unique(words.begin(), words.end()), words.end());

    row.clear();
    for (uint32_t w : words) row.push_back({w, 1.0});
    matrix.AppendRow(i, row);
  }
  return matrix;
}

DenseMatrix GenerateLowRank(const LowRankConfig& config) {
  SPCA_CHECK_LE(config.rank, config.cols);
  Rng rng(config.seed);
  DenseMatrix w = DenseMatrix::GaussianRandom(config.cols, config.rank, &rng);
  std::vector<double> mean(config.cols);
  for (auto& m : mean) m = rng.NextGaussian(0.0, config.mean_scale);

  DenseMatrix y(config.rows, config.cols);
  std::vector<double> z(config.rank);
  for (size_t i = 0; i < config.rows; ++i) {
    for (auto& v : z) v = rng.NextGaussian(0.0, config.signal_stddev);
    for (size_t j = 0; j < config.cols; ++j) {
      double value = mean[j] + rng.NextGaussian(0.0, config.noise_stddev);
      for (size_t k = 0; k < config.rank; ++k) value += w(j, k) * z[k];
      y(i, j) = value;
    }
  }
  return y;
}

DenseMatrix GenerateSpectra(const SpectraConfig& config) {
  Rng rng(config.seed);
  const size_t prototypes = std::max<size_t>(1, config.num_prototypes);

  // Prototype spectra: sums of Gaussian peaks at random frequencies.
  DenseMatrix proto(prototypes, config.cols);
  for (size_t p = 0; p < prototypes; ++p) {
    for (size_t peak = 0; peak < config.num_peaks; ++peak) {
      const double center =
          static_cast<double>(rng.NextUint64Below(config.cols));
      const double width = 2.0 + 8.0 * rng.NextDouble();
      const double height = 0.3 + rng.NextDouble();
      const size_t lo = static_cast<size_t>(
          std::max(0.0, center - 4.0 * width));
      const size_t hi = std::min(
          config.cols, static_cast<size_t>(center + 4.0 * width) + 1);
      for (size_t j = lo; j < hi; ++j) {
        const double dx = (static_cast<double>(j) - center) / width;
        proto(p, j) += height * std::exp(-0.5 * dx * dx);
      }
    }
  }

  // Each patient mixes the prototypes with random positive weights.
  DenseMatrix y(config.rows, config.cols);
  std::vector<double> weights(prototypes);
  for (size_t i = 0; i < config.rows; ++i) {
    for (auto& w : weights) w = std::fabs(rng.NextGaussian(0.5, 0.3));
    for (size_t j = 0; j < config.cols; ++j) {
      double value = rng.NextGaussian(0.0, config.noise_stddev);
      for (size_t p = 0; p < prototypes; ++p) value += weights[p] * proto(p, j);
      y(i, j) = value;
    }
  }
  return y;
}

DenseMatrix GenerateImageFeatures(const ImageFeaturesConfig& config) {
  Rng rng(config.seed);
  const size_t clusters = std::max<size_t>(1, config.num_clusters);

  // Cluster centroids: non-negative "visual words" in SIFT space.
  DenseMatrix centroids(clusters, config.cols);
  for (size_t c = 0; c < clusters; ++c) {
    for (size_t j = 0; j < config.cols; ++j) {
      centroids(c, j) = std::fabs(rng.NextGaussian(0.2, 0.25));
    }
  }

  DenseMatrix y(config.rows, config.cols);
  for (size_t i = 0; i < config.rows; ++i) {
    const size_t c = rng.NextUint64Below(clusters);
    for (size_t j = 0; j < config.cols; ++j) {
      y(i, j) = std::max(
          0.0, centroids(c, j) + rng.NextGaussian(0.0, config.cluster_stddev));
    }
  }
  return y;
}

DenseMatrix GenerateSparseSignal(const SparseSignalConfig& config) {
  SPCA_CHECK_GT(config.rank, 0u);
  SPCA_CHECK_LE(config.rank, config.cols);
  SPCA_CHECK_GT(config.active_per_component, 0u);
  Rng rng(config.seed);

  // Ground-truth loadings: disjoint-ish supports of active_per_component
  // rows per component, cycling over the dimensions so supports never
  // overlap while active_per_component * rank <= cols.
  DenseMatrix w(config.cols, config.rank);
  size_t next_row = 0;
  for (size_t k = 0; k < config.rank; ++k) {
    for (size_t a = 0; a < config.active_per_component; ++a) {
      const size_t r = next_row % config.cols;
      const double sign = rng.NextDouble() < 0.5 ? -1.0 : 1.0;
      w(r, k) = sign * config.loading_scale * (0.5 + rng.NextDouble());
      ++next_row;
    }
  }

  std::vector<double> mean(config.cols);
  for (auto& m : mean) m = rng.NextGaussian(0.0, config.mean_scale);

  DenseMatrix y(config.rows, config.cols);
  std::vector<double> z(config.rank);
  for (size_t i = 0; i < config.rows; ++i) {
    for (auto& v : z) v = rng.NextGaussian(0.0, config.signal_stddev);
    for (size_t j = 0; j < config.cols; ++j) {
      double value = mean[j] + rng.NextGaussian(0.0, config.noise_stddev);
      for (size_t k = 0; k < config.rank; ++k) value += w(j, k) * z[k];
      y(i, j) = value;
    }
  }
  return y;
}

SparseMatrix GenerateSparseLowRank(const SparseLowRankConfig& config) {
  SPCA_CHECK_GT(config.rank, 0u);
  SPCA_CHECK_LE(config.rank, config.cols);
  SPCA_CHECK(config.density > 0.0 && config.density <= 1.0);
  Rng rng(config.seed);
  DenseMatrix w = DenseMatrix::GaussianRandom(config.cols, config.rank, &rng);

  SparseMatrix matrix(config.rows, config.cols);
  std::vector<double> z(config.rank);
  std::vector<SparseEntry> row;
  for (size_t i = 0; i < config.rows; ++i) {
    for (auto& v : z) v = rng.NextGaussian(0.0, config.signal_stddev);
    row.clear();
    for (size_t j = 0; j < config.cols; ++j) {
      if (rng.NextDouble() >= config.density) continue;
      double value = rng.NextGaussian(0.0, config.noise_stddev);
      for (size_t k = 0; k < config.rank; ++k) value += w(j, k) * z[k];
      row.push_back({static_cast<uint32_t>(j), value});
    }
    matrix.AppendRow(i, row);
  }
  return matrix;
}

}  // namespace spca::workload
