#ifndef SPCA_WORKLOAD_IO_H_
#define SPCA_WORKLOAD_IO_H_

#include <string>

#include "common/status.h"
#include "linalg/dense_matrix.h"
#include "linalg/sparse_matrix.h"

namespace spca::workload {

/// Writes a sparse matrix in a simple binary format (magic, shape, CSR
/// arrays). The on-disk size is what a real deployment would store in HDFS.
Status SaveSparseBinary(const linalg::SparseMatrix& matrix,
                        const std::string& path);

/// Reads a matrix written by SaveSparseBinary.
StatusOr<linalg::SparseMatrix> LoadSparseBinary(const std::string& path);

/// Writes a dense matrix in a simple binary format.
Status SaveDenseBinary(const linalg::DenseMatrix& matrix,
                       const std::string& path);

/// Reads a matrix written by SaveDenseBinary.
StatusOr<linalg::DenseMatrix> LoadDenseBinary(const std::string& path);

/// Writes a dense matrix as text: one row per line, space-separated
/// values. Human-inspectable; convenient for handing components to other
/// tools (numpy.loadtxt reads it directly).
Status SaveDenseText(const linalg::DenseMatrix& matrix,
                     const std::string& path);

/// Reads a matrix written by SaveDenseText (all rows must have the same
/// number of values).
StatusOr<linalg::DenseMatrix> LoadDenseText(const std::string& path);

/// Writes a sparse matrix as text, one row per line: "index:value" pairs
/// separated by spaces (libsvm-style, without labels). Human-inspectable.
Status SaveSparseText(const linalg::SparseMatrix& matrix,
                      const std::string& path);

/// Reads a matrix written by SaveSparseText. `cols` must be supplied (the
/// text format does not record trailing empty columns).
StatusOr<linalg::SparseMatrix> LoadSparseText(const std::string& path,
                                              size_t cols);

}  // namespace spca::workload

#endif  // SPCA_WORKLOAD_IO_H_
