#include "workload/row_stream.h"

#include <vector>

#include "common/check.h"
#include "linalg/qr.h"

namespace spca::workload {

using linalg::DenseMatrix;
using linalg::DenseVector;

RowStream::RowStream(const RowStreamConfig& config)
    : config_(config), rng_(config.seed) {
  SPCA_CHECK_GT(config_.rank, 0u);
  SPCA_CHECK_LE(config_.rank, config_.dim);
  SPCA_CHECK_GT(config_.batch_rows, 0u);
  basis_ = linalg::OrthonormalizeColumns(
      DenseMatrix::GaussianRandom(config_.dim, config_.rank, &rng_));
  mean_ = DenseVector(config_.dim);
  for (size_t j = 0; j < config_.dim; ++j) {
    mean_[j] = rng_.NextGaussian(0.0, config_.mean_scale);
  }
}

void RowStream::Drift() {
  // Rotate the true subspace: mix a fresh Gaussian into the basis and
  // re-orthonormalize. drift_amount controls how far the subspace turns.
  DenseMatrix mixed = basis_;
  const DenseMatrix g =
      DenseMatrix::GaussianRandom(config_.dim, config_.rank, &rng_);
  mixed.AddScaled(config_.drift_amount, g);
  basis_ = linalg::OrthonormalizeColumns(mixed);
  drifts_applied_ += 1;
}

dist::DistMatrix RowStream::NextBatch() {
  if (config_.drift_every_batches > 0 && batches_emitted_ > 0 &&
      batches_emitted_ % config_.drift_every_batches == 0) {
    Drift();
  }
  DenseMatrix y(config_.batch_rows, config_.dim);
  std::vector<double> z(config_.rank);
  for (size_t i = 0; i < config_.batch_rows; ++i) {
    for (auto& v : z) v = rng_.NextGaussian(0.0, config_.signal_stddev);
    for (size_t j = 0; j < config_.dim; ++j) {
      double value = mean_[j] + rng_.NextGaussian(0.0, config_.noise_stddev);
      for (size_t k = 0; k < config_.rank; ++k) value += basis_(j, k) * z[k];
      y(i, j) = value;
    }
  }
  batches_emitted_ += 1;
  rows_emitted_ += config_.batch_rows;
  return dist::DistMatrix::FromDense(std::move(y),
                                     config_.partitions_per_batch);
}

}  // namespace spca::workload
