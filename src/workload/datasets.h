#ifndef SPCA_WORKLOAD_DATASETS_H_
#define SPCA_WORKLOAD_DATASETS_H_

#include <string>

#include "dist/dist_matrix.h"

namespace spca::workload {

/// The four dataset families from the paper's evaluation (Section 5),
/// reproduced as synthetic generators with matching shape:
///
///   kTweets:   1.26B x 71.5K binary sparse (tweets x words), ~very sparse
///   kBioText:  8.2M x 141K binary sparse (documents x words)
///   kDiabetes: 353 x 65.7K dense real (patients x NMR frequencies)
///   kImages:   160M x 128 dense real (SIFT features x dimensions)
///
/// Benchmarks instantiate them at laptop scale with the paper's aspect
/// ratios and sparsity preserved.
enum class DatasetKind {
  kTweets,
  kBioText,
  kDiabetes,
  kImages,
};

const char* DatasetKindToString(DatasetKind kind);

/// A concrete, generated dataset instance.
struct Dataset {
  std::string name;
  DatasetKind kind;
  dist::DistMatrix matrix;
};

/// Generates a dataset of the given family at the given shape. Sparsity,
/// skew, and structure parameters match the family; data is deterministic
/// in `seed`.
Dataset MakeDataset(DatasetKind kind, size_t rows, size_t cols,
                    size_t num_partitions, uint64_t seed = 42);

}  // namespace spca::workload

#endif  // SPCA_WORKLOAD_DATASETS_H_
