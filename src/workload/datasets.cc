#include "workload/datasets.h"

#include "common/check.h"
#include "workload/synthetic.h"

namespace spca::workload {

const char* DatasetKindToString(DatasetKind kind) {
  switch (kind) {
    case DatasetKind::kTweets:
      return "Tweets";
    case DatasetKind::kBioText:
      return "Bio-Text";
    case DatasetKind::kDiabetes:
      return "Diabetes";
    case DatasetKind::kImages:
      return "Images";
  }
  return "Unknown";
}

Dataset MakeDataset(DatasetKind kind, size_t rows, size_t cols,
                    size_t num_partitions, uint64_t seed) {
  Dataset dataset;
  dataset.kind = kind;
  dataset.name = DatasetKindToString(kind);

  switch (kind) {
    case DatasetKind::kTweets: {
      // Tweets are very short documents: ~10 words each over a large
      // vocabulary — the sparsest of the paper's datasets.
      BagOfWordsConfig config;
      config.rows = rows;
      config.vocab = cols;
      config.words_per_row = 10.0;
      config.zipf_exponent = 1.1;
      config.num_topics = 25;
      config.seed = seed;
      dataset.matrix = dist::DistMatrix::FromSparse(GenerateBagOfWords(config),
                                                    num_partitions);
      break;
    }
    case DatasetKind::kBioText: {
      // Biomedical documents are much longer than tweets (denser rows).
      BagOfWordsConfig config;
      config.rows = rows;
      config.vocab = cols;
      config.words_per_row = 60.0;
      config.zipf_exponent = 1.0;
      config.num_topics = 40;
      config.seed = seed;
      dataset.matrix = dist::DistMatrix::FromSparse(GenerateBagOfWords(config),
                                                    num_partitions);
      break;
    }
    case DatasetKind::kDiabetes: {
      SpectraConfig config;
      config.rows = rows;
      config.cols = cols;
      config.seed = seed;
      dataset.matrix =
          dist::DistMatrix::FromDense(GenerateSpectra(config), num_partitions);
      break;
    }
    case DatasetKind::kImages: {
      ImageFeaturesConfig config;
      config.rows = rows;
      config.cols = cols;
      config.seed = seed;
      dataset.matrix = dist::DistMatrix::FromDense(
          GenerateImageFeatures(config), num_partitions);
      break;
    }
  }
  SPCA_CHECK_EQ(dataset.matrix.rows(), rows);
  SPCA_CHECK_EQ(dataset.matrix.cols(), cols);
  return dataset;
}

}  // namespace spca::workload
