#include "workload/load_gen.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/check.h"
#include "common/rng.h"

namespace spca::workload {

std::vector<Query> GenerateQueries(const QuerySetConfig& config) {
  SPCA_CHECK_GT(config.dim, 0u);
  Rng rng(config.seed);
  std::vector<Query> queries;
  queries.reserve(config.num_queries);

  if (config.dense) {
    for (size_t q = 0; q < config.num_queries; ++q) {
      Query query;
      query.dense = linalg::DenseVector(config.dim);
      for (size_t j = 0; j < config.dim; ++j) {
        query.dense[j] = rng.NextGaussian();
      }
      queries.push_back(std::move(query));
    }
    return queries;
  }

  ZipfSampler words(config.dim, config.zipf_exponent);
  const double extra_mean = std::max(0.0, config.nnz_per_query - 1.0);
  for (size_t q = 0; q < config.num_queries; ++q) {
    // Geometric-ish count: 1 + Poisson-approximated extra draws, matching
    // the bag-of-words generator's "mean document length" knob closely
    // enough for load shaping (the exact distribution is unimportant, the
    // determinism is).
    size_t count = 1;
    double budget = extra_mean;
    while (budget > 0.0 && rng.NextDouble() < budget / (budget + 1.0)) {
      ++count;
      budget -= 1.0;
    }
    std::vector<uint32_t> indices;
    indices.reserve(count);
    for (size_t k = 0; k < count; ++k) {
      indices.push_back(static_cast<uint32_t>(words.Sample(&rng)));
    }
    std::sort(indices.begin(), indices.end());
    indices.erase(std::unique(indices.begin(), indices.end()), indices.end());
    std::vector<linalg::SparseEntry> entries;
    entries.reserve(indices.size());
    for (uint32_t index : indices) entries.push_back({index, 1.0});
    Query query;
    query.sparse = linalg::SparseVector(std::move(entries), config.dim);
    queries.push_back(std::move(query));
  }
  return queries;
}

std::vector<double> GenerateArrivalSchedule(
    const ArrivalScheduleConfig& config) {
  std::vector<double> offsets;
  offsets.reserve(config.num_arrivals);
  if (config.qps <= 0.0) {
    offsets.assign(config.num_arrivals, 0.0);
    return offsets;
  }
  const double mean_gap = 1.0 / config.qps;
  const bool bursty = config.burst_factor > 1.0 &&
                      config.burst_period_sec > 0.0 &&
                      config.burst_duration_sec > 0.0;
  SPCA_CHECK_GE(config.burst_factor, 1.0);
  Rng rng(config.seed);
  double t = 0.0;
  for (size_t i = 0; i < config.num_arrivals; ++i) {
    double gap;
    if (config.poisson) {
      // Inverse-CDF exponential gap; 1 - u keeps the argument in (0, 1].
      gap = -mean_gap * std::log(1.0 - rng.NextDouble());
    } else {
      gap = mean_gap;
    }
    if (bursty) {
      // Rate-modulated thinning: gaps drawn at the base rate shrink by
      // burst_factor while the arrival lands inside a burst window. The
      // same unit-rate draws underlie bursty and flat schedules, so
      // flipping bursts on only re-times — never re-orders — the load.
      const double phase = std::fmod(t, config.burst_period_sec);
      if (phase < config.burst_duration_sec) gap /= config.burst_factor;
    }
    t += gap;
    offsets.push_back(t);
  }
  return offsets;
}

std::vector<TaggedQuery> GenerateTenantMix(const TenantMixConfig& config) {
  SPCA_CHECK(!config.models.empty());
  SPCA_CHECK_GT(config.num_tenants, 0u);
  std::vector<Query> rows = GenerateQueries(config.query);
  // Tenant tags ride on a derived seed so the row payloads above stay
  // bit-identical to the untagged GenerateQueries output.
  Rng rng(config.query.seed ^ 0x7e6a2c3b19d5f041ull);
  ZipfSampler tenants(config.num_tenants, config.tenant_zipf_exponent);
  std::vector<TaggedQuery> tagged;
  tagged.reserve(rows.size());
  for (auto& row : rows) {
    TaggedQuery q;
    q.tenant = static_cast<uint64_t>(tenants.Sample(&rng));
    q.model_index = static_cast<size_t>(q.tenant) % config.models.size();
    q.query = std::move(row);
    tagged.push_back(std::move(q));
  }
  return tagged;
}

}  // namespace spca::workload
