#include "workload/load_gen.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/check.h"
#include "common/rng.h"

namespace spca::workload {

std::vector<Query> GenerateQueries(const QuerySetConfig& config) {
  SPCA_CHECK_GT(config.dim, 0u);
  Rng rng(config.seed);
  std::vector<Query> queries;
  queries.reserve(config.num_queries);

  if (config.dense) {
    for (size_t q = 0; q < config.num_queries; ++q) {
      Query query;
      query.dense = linalg::DenseVector(config.dim);
      for (size_t j = 0; j < config.dim; ++j) {
        query.dense[j] = rng.NextGaussian();
      }
      queries.push_back(std::move(query));
    }
    return queries;
  }

  ZipfSampler words(config.dim, config.zipf_exponent);
  const double extra_mean = std::max(0.0, config.nnz_per_query - 1.0);
  for (size_t q = 0; q < config.num_queries; ++q) {
    // Geometric-ish count: 1 + Poisson-approximated extra draws, matching
    // the bag-of-words generator's "mean document length" knob closely
    // enough for load shaping (the exact distribution is unimportant, the
    // determinism is).
    size_t count = 1;
    double budget = extra_mean;
    while (budget > 0.0 && rng.NextDouble() < budget / (budget + 1.0)) {
      ++count;
      budget -= 1.0;
    }
    std::vector<uint32_t> indices;
    indices.reserve(count);
    for (size_t k = 0; k < count; ++k) {
      indices.push_back(static_cast<uint32_t>(words.Sample(&rng)));
    }
    std::sort(indices.begin(), indices.end());
    indices.erase(std::unique(indices.begin(), indices.end()), indices.end());
    std::vector<linalg::SparseEntry> entries;
    entries.reserve(indices.size());
    for (uint32_t index : indices) entries.push_back({index, 1.0});
    Query query;
    query.sparse = linalg::SparseVector(std::move(entries), config.dim);
    queries.push_back(std::move(query));
  }
  return queries;
}

std::vector<double> GenerateArrivalSchedule(
    const ArrivalScheduleConfig& config) {
  std::vector<double> offsets;
  offsets.reserve(config.num_arrivals);
  if (config.qps <= 0.0) {
    offsets.assign(config.num_arrivals, 0.0);
    return offsets;
  }
  const double mean_gap = 1.0 / config.qps;
  Rng rng(config.seed);
  double t = 0.0;
  for (size_t i = 0; i < config.num_arrivals; ++i) {
    if (config.poisson) {
      // Inverse-CDF exponential gap; 1 - u keeps the argument in (0, 1].
      t += -mean_gap * std::log(1.0 - rng.NextDouble());
    } else {
      t += mean_gap;
    }
    offsets.push_back(t);
  }
  return offsets;
}

}  // namespace spca::workload
