#ifndef SPCA_SERVE_MODEL_REGISTRY_H_
#define SPCA_SERVE_MODEL_REGISTRY_H_

#include <chrono>
#include <cstdint>
#include <memory>
#include <optional>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "core/pca_model.h"
#include "obs/registry.h"
#include "serve/projector.h"

namespace spca::serve {

/// Freshness metadata for one installed model.
struct ModelInfo {
  /// Per-name install count: 1 for the first install, bumped by every
  /// subsequent swap under the same name. Restarts reset it (the registry
  /// is in-memory); the streaming publisher reports it as the published
  /// model generation.
  uint64_t generation = 0;
  /// Seconds since this generation was installed.
  double age_seconds = 0.0;
};

/// Named, hot-swappable collection of servable models. Readers take an
/// atomic snapshot — a shared_ptr<const Projector> — and keep using it for
/// the duration of a batch even if the name is swapped or removed
/// concurrently; the old projector is freed when the last in-flight batch
/// drops its reference. Writers (Load/Install/Remove) exclude each other
/// and readers only for the duration of the map update, never while the
/// replacement projector's factor is being computed.
class ModelRegistry {
 public:
  /// `metrics` may be null; when set, serve.model_loads / serve.model_swaps
  /// counters and per-model serve.model_generation.<name> /
  /// serve.model_age_seconds.<name> gauges are recorded (age gauges are
  /// refreshed by RefreshAgeMetrics, typically right before a --metrics
  /// dump).
  explicit ModelRegistry(obs::Registry* metrics = nullptr)
      : metrics_(metrics),
        epoch_(std::chrono::steady_clock::now()) {}

  ModelRegistry(const ModelRegistry&) = delete;
  ModelRegistry& operator=(const ModelRegistry&) = delete;

  /// Reads a model file (serve/model_io.h) and installs it under `name`,
  /// replacing any previous model with that name. The swap is atomic:
  /// concurrent Get() sees either the old or the new projector, never a
  /// partial state. On error the previous model (if any) is left serving.
  Status Load(const std::string& name, const std::string& path);

  /// Installs an in-memory model under `name` (same swap semantics).
  Status Install(const std::string& name, core::PcaModel model);

  /// Removes `name`. Returns false when it was not present. In-flight
  /// batches holding a snapshot keep serving from it.
  bool Remove(const std::string& name);

  /// Snapshot of the projector for `name`, or nullptr when absent.
  std::shared_ptr<const Projector> Get(const std::string& name) const;

  /// Generation and staleness of `name`, or nullopt when absent.
  std::optional<ModelInfo> GetInfo(const std::string& name) const;

  /// Re-publishes serve.model_age_seconds.<name> gauges from the current
  /// clock; a no-op without a metrics registry.
  void RefreshAgeMetrics() const;

  /// Sorted names of the currently installed models.
  std::vector<std::string> Names() const;

  size_t size() const;

 private:
  struct Entry {
    std::shared_ptr<const Projector> projector;
    uint64_t generation = 0;
    double installed_sec = 0.0;
  };

  void Swap(const std::string& name,
            std::shared_ptr<const Projector> projector);
  double NowSeconds() const;

  obs::Registry* metrics_;
  const std::chrono::steady_clock::time_point epoch_;
  mutable std::shared_mutex mutex_;
  std::unordered_map<std::string, Entry> models_;
};

}  // namespace spca::serve

#endif  // SPCA_SERVE_MODEL_REGISTRY_H_
