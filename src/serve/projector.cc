#include "serve/projector.h"

#include <cstring>
#include <utility>
#include <vector>

#include "linalg/kernels.h"
#include "linalg/solve.h"

namespace spca::serve {

using linalg::DenseMatrix;
using linalg::DenseVector;

StatusOr<Projector> Projector::Create(core::PcaModel model) {
  if (model.input_dim() == 0 || model.num_components() == 0) {
    return Status::InvalidArgument("projector needs a non-empty model");
  }
  if (model.mean.size() != model.input_dim()) {
    return Status::InvalidArgument("model mean/components shape mismatch");
  }
  const size_t big_d = model.input_dim();
  const size_t d = model.num_components();

  // M = C'C + ss*I, accumulated row-by-row with the symmetric rank-1
  // kernel (exactly how the training XtX job accumulates).
  DenseMatrix m(d, d);
  for (size_t k = 0; k < big_d; ++k) {
    linalg::kernels::SymRank1Update(model.components.RowPtr(k), d, m.data(),
                                    d);
  }
  linalg::kernels::SymMirrorLower(m.data(), d, d);
  m.AddScaledIdentity(model.noise_variance);

  auto factor = linalg::Inverse(m);
  if (!factor.ok()) {
    return Status::InvalidArgument(
        "model is not servable: C'C + ss*I is singular (" +
        factor.status().message() + ")");
  }

  Projector projector;
  projector.factor_ = std::move(factor.value());
  // C' * mean via the same sparse-row kernel queries use (mean entries that
  // are zero cost nothing).
  projector.mean_projection_ = DenseVector(d);
  for (size_t k = 0; k < big_d; ++k) {
    const double v = model.mean[k];
    if (v == 0.0) continue;
    linalg::kernels::AxpyRow(v, model.components.RowPtr(k), d,
                             projector.mean_projection_.data());
  }
  uint64_t component_nnz = 0;
  for (size_t k = 0; k < big_d; ++k) {
    for (size_t j = 0; j < d; ++j) {
      if (model.components(k, j) != 0.0) ++component_nnz;
    }
  }
  projector.component_nnz_ = component_nnz;
  projector.model_ = std::move(model);
  return projector;
}

void Projector::FinishProjection(double* scratch, double* out) const {
  const size_t d = num_components();
  for (size_t j = 0; j < d; ++j) scratch[j] -= mean_projection_[j];
  std::memset(out, 0, d * sizeof(double));
  // x = F * t with F symmetric, computed as the row-vector product t' * F
  // so the d x d multiply reuses the RowGemm kernel.
  linalg::kernels::RowGemm(scratch, d, factor_.data(), factor_.row_stride(),
                           d, out);
}

void Projector::ProjectSparse(linalg::SparseRowView row, double* out) const {
  SPCA_CHECK_EQ(row.dim(), input_dim());
  const size_t d = num_components();
  std::vector<double> t(d, 0.0);
  linalg::kernels::SparseRowGemv(row.begin(), row.nnz(),
                                 model_.components.RowPtr(0),
                                 model_.components.row_stride(), d, t.data());
  FinishProjection(t.data(), out);
}

void Projector::ProjectDense(const double* row, double* out) const {
  const size_t d = num_components();
  std::vector<double> t(d, 0.0);
  linalg::kernels::RowGemm(row, input_dim(), model_.components.RowPtr(0),
                           model_.components.row_stride(), d, t.data());
  FinishProjection(t.data(), out);
}

DenseVector Projector::Project(const linalg::SparseVector& query) const {
  DenseVector out(num_components());
  ProjectSparse(query.View(), out.data());
  return out;
}

DenseVector Projector::Project(const DenseVector& query) const {
  SPCA_CHECK_EQ(query.size(), input_dim());
  DenseVector out(num_components());
  ProjectDense(query.data(), out.data());
  return out;
}

}  // namespace spca::serve
