#ifndef SPCA_SERVE_MODEL_IO_H_
#define SPCA_SERVE_MODEL_IO_H_

#include <cstdint>
#include <string>

#include "common/status.h"
#include "core/pca_model.h"
#include "core/solver.h"

namespace spca::serve {

/// Versioned binary container for a fitted core::PcaModel — the durable
/// artifact that decouples training (spca_cli --save-model) from serving
/// (spca_serve --model). Layout, all little-endian, doubles as IEEE-754
/// bits (so save/load round-trips are bit-identical on one platform):
///
///   u32  magic            'S','P','C','M' (0x4D435053 LE)
///   u32  version          kModelFormatVersion
///   u64  input_dim        D
///   u64  num_components   d
///   f64  noise_variance   ss
///   f64  mean[D]
///   f64  components[D*d]  row-major (row k = dimension k's loadings)
///   u64  checksum         FNV-1a 64 over every preceding byte
///
/// LoadModel rejects wrong magic, unknown versions, truncated or oversized
/// files, absurd dimensions, and any corruption the checksum catches.
inline constexpr uint32_t kModelMagic = 0x4D435053u;  // "SPCM"
inline constexpr uint32_t kModelFormatVersion = 1;

/// Serialized size in bytes of a model with the given shape.
uint64_t ModelFileSize(uint64_t input_dim, uint64_t num_components);

/// FNV-1a 64-bit checksum (the format's integrity hash; exposed for tests).
uint64_t Fnv1a64(const void* data, size_t size, uint64_t seed = 0xcbf29ce484222325ull);

/// Writes `model` to `path` in the format above. The model's mean must
/// have input_dim elements (CHECKed).
Status SaveModel(const core::PcaModel& model, const std::string& path);

/// Reads a model written by SaveModel, validating magic, version, shape,
/// exact file size, and checksum.
StatusOr<core::PcaModel> LoadModel(const std::string& path);

/// Checkpoint sidecar format ("SPCS"): the solver's sufficient statistics
/// beyond the servable model, written next to the SPCM file so a killed
/// fit resumes bit-identically (core::Solver::Restore). Layout, all
/// little-endian:
///
///   u32  magic          'S','P','C','S' (0x53435053 LE)
///   u32  version        kCheckpointFormatVersion
///   u64  solver_len     then that many bytes of Solver::name()
///   u64  step
///   u64  rows_seen
///   u64  num_scalars    then per scalar: u64 key_len, key, f64 value
///   u64  num_matrices   then per matrix: u64 key_len, key,
///                       u64 rows, u64 cols, f64 data[rows*cols] row-major
///   u64  checksum       FNV-1a 64 over every preceding byte
///
/// LoadSolverState applies the same corruption rejection discipline as
/// LoadModel: wrong magic/version, truncation, implausible counts or
/// dimensions, trailing garbage, and checksum mismatches all fail loudly.
inline constexpr uint32_t kCheckpointMagic = 0x53435053u;  // "SPCS"
inline constexpr uint32_t kCheckpointFormatVersion = 1;
/// Sidecar path = model path + this suffix.
inline constexpr const char* kCheckpointSidecarSuffix = ".sstat";

/// Writes just the sidecar (exposed for tests; SaveCheckpoint is the
/// user-facing entry point).
Status SaveSolverState(const core::SolverCheckpoint& checkpoint,
                       const std::string& path);
StatusOr<core::SolverCheckpoint> LoadSolverState(const std::string& path);

/// Writes `model` to `path` (SPCM) and `checkpoint` to
/// `path + kCheckpointSidecarSuffix` (SPCS). Fails without leaving a
/// model file behind if the sidecar cannot be written — a model whose
/// resume state is missing must not look like a valid checkpoint.
Status SaveCheckpoint(const core::PcaModel& model,
                      const core::SolverCheckpoint& checkpoint,
                      const std::string& path);

struct LoadedCheckpoint {
  core::PcaModel model;
  core::SolverCheckpoint state;
};

/// Loads the (model, solver state) pair written by SaveCheckpoint.
StatusOr<LoadedCheckpoint> LoadCheckpoint(const std::string& path);

}  // namespace spca::serve

#endif  // SPCA_SERVE_MODEL_IO_H_
