#ifndef SPCA_SERVE_MODEL_IO_H_
#define SPCA_SERVE_MODEL_IO_H_

#include <cstdint>
#include <string>

#include "common/status.h"
#include "core/pca_model.h"

namespace spca::serve {

/// Versioned binary container for a fitted core::PcaModel — the durable
/// artifact that decouples training (spca_cli --save-model) from serving
/// (spca_serve --model). Layout, all little-endian, doubles as IEEE-754
/// bits (so save/load round-trips are bit-identical on one platform):
///
///   u32  magic            'S','P','C','M' (0x4D435053 LE)
///   u32  version          kModelFormatVersion
///   u64  input_dim        D
///   u64  num_components   d
///   f64  noise_variance   ss
///   f64  mean[D]
///   f64  components[D*d]  row-major (row k = dimension k's loadings)
///   u64  checksum         FNV-1a 64 over every preceding byte
///
/// LoadModel rejects wrong magic, unknown versions, truncated or oversized
/// files, absurd dimensions, and any corruption the checksum catches.
inline constexpr uint32_t kModelMagic = 0x4D435053u;  // "SPCM"
inline constexpr uint32_t kModelFormatVersion = 1;

/// Serialized size in bytes of a model with the given shape.
uint64_t ModelFileSize(uint64_t input_dim, uint64_t num_components);

/// FNV-1a 64-bit checksum (the format's integrity hash; exposed for tests).
uint64_t Fnv1a64(const void* data, size_t size, uint64_t seed = 0xcbf29ce484222325ull);

/// Writes `model` to `path` in the format above. The model's mean must
/// have input_dim elements (CHECKed).
Status SaveModel(const core::PcaModel& model, const std::string& path);

/// Reads a model written by SaveModel, validating magic, version, shape,
/// exact file size, and checksum.
StatusOr<core::PcaModel> LoadModel(const std::string& path);

}  // namespace spca::serve

#endif  // SPCA_SERVE_MODEL_IO_H_
