#include "serve/model_registry.h"

#include <algorithm>
#include <utility>

#include "serve/model_io.h"

namespace spca::serve {

Status ModelRegistry::Load(const std::string& name, const std::string& path) {
  auto model = LoadModel(path);
  if (!model.ok()) return model.status();
  auto projector = Projector::Create(std::move(model).value());
  if (!projector.ok()) return projector.status();
  Swap(name, std::make_shared<const Projector>(std::move(projector).value()));
  if (metrics_ != nullptr) metrics_->counter("serve.model_loads")->Add(1);
  return Status::Ok();
}

Status ModelRegistry::Install(const std::string& name, core::PcaModel model) {
  auto projector = Projector::Create(std::move(model));
  if (!projector.ok()) return projector.status();
  Swap(name, std::make_shared<const Projector>(std::move(projector).value()));
  return Status::Ok();
}

void ModelRegistry::Swap(const std::string& name,
                         std::shared_ptr<const Projector> projector) {
  std::shared_ptr<const Projector> replaced;  // destroyed outside the lock
  bool swapped = false;
  {
    std::unique_lock<std::shared_mutex> lock(mutex_);
    auto& slot = models_[name];
    swapped = slot != nullptr;
    replaced = std::exchange(slot, std::move(projector));
  }
  if (swapped && metrics_ != nullptr) {
    metrics_->counter("serve.model_swaps")->Add(1);
  }
}

bool ModelRegistry::Remove(const std::string& name) {
  std::shared_ptr<const Projector> removed;  // destroyed outside the lock
  std::unique_lock<std::shared_mutex> lock(mutex_);
  auto it = models_.find(name);
  if (it == models_.end()) return false;
  removed = std::move(it->second);
  models_.erase(it);
  return true;
}

std::shared_ptr<const Projector> ModelRegistry::Get(
    const std::string& name) const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  auto it = models_.find(name);
  if (it == models_.end()) return nullptr;
  return it->second;
}

std::vector<std::string> ModelRegistry::Names() const {
  std::vector<std::string> names;
  {
    std::shared_lock<std::shared_mutex> lock(mutex_);
    names.reserve(models_.size());
    for (const auto& [name, _] : models_) names.push_back(name);
  }
  std::sort(names.begin(), names.end());
  return names;
}

size_t ModelRegistry::size() const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  return models_.size();
}

}  // namespace spca::serve
