#include "serve/model_registry.h"

#include <algorithm>
#include <utility>

#include "serve/model_io.h"

namespace spca::serve {

double ModelRegistry::NowSeconds() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       epoch_)
      .count();
}

Status ModelRegistry::Load(const std::string& name, const std::string& path) {
  auto model = LoadModel(path);
  if (!model.ok()) return model.status();
  auto projector = Projector::Create(std::move(model).value());
  if (!projector.ok()) return projector.status();
  Swap(name, std::make_shared<const Projector>(std::move(projector).value()));
  if (metrics_ != nullptr) metrics_->counter("serve.model_loads")->Add(1);
  return Status::Ok();
}

Status ModelRegistry::Install(const std::string& name, core::PcaModel model) {
  auto projector = Projector::Create(std::move(model));
  if (!projector.ok()) return projector.status();
  Swap(name, std::make_shared<const Projector>(std::move(projector).value()));
  return Status::Ok();
}

void ModelRegistry::Swap(const std::string& name,
                         std::shared_ptr<const Projector> projector) {
  std::shared_ptr<const Projector> replaced;  // destroyed outside the lock
  bool swapped = false;
  uint64_t generation = 0;
  {
    std::unique_lock<std::shared_mutex> lock(mutex_);
    Entry& slot = models_[name];
    swapped = slot.projector != nullptr;
    replaced = std::exchange(slot.projector, std::move(projector));
    slot.generation += 1;
    slot.installed_sec = NowSeconds();
    generation = slot.generation;
  }
  if (metrics_ != nullptr) {
    if (swapped) metrics_->counter("serve.model_swaps")->Add(1);
    metrics_->gauge("serve.model_generation." + name)
        ->Set(static_cast<double>(generation));
    metrics_->gauge("serve.model_age_seconds." + name)->Set(0.0);
  }
}

bool ModelRegistry::Remove(const std::string& name) {
  std::shared_ptr<const Projector> removed;  // destroyed outside the lock
  std::unique_lock<std::shared_mutex> lock(mutex_);
  auto it = models_.find(name);
  if (it == models_.end()) return false;
  removed = std::move(it->second.projector);
  models_.erase(it);
  return true;
}

std::shared_ptr<const Projector> ModelRegistry::Get(
    const std::string& name) const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  auto it = models_.find(name);
  if (it == models_.end()) return nullptr;
  return it->second.projector;
}

std::optional<ModelInfo> ModelRegistry::GetInfo(const std::string& name) const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  auto it = models_.find(name);
  if (it == models_.end()) return std::nullopt;
  ModelInfo info;
  info.generation = it->second.generation;
  info.age_seconds = std::max(0.0, NowSeconds() - it->second.installed_sec);
  return info;
}

void ModelRegistry::RefreshAgeMetrics() const {
  if (metrics_ == nullptr) return;
  const double now = NowSeconds();
  std::shared_lock<std::shared_mutex> lock(mutex_);
  for (const auto& [name, entry] : models_) {
    metrics_->gauge("serve.model_age_seconds." + name)
        ->Set(std::max(0.0, now - entry.installed_sec));
  }
}

std::vector<std::string> ModelRegistry::Names() const {
  std::vector<std::string> names;
  {
    std::shared_lock<std::shared_mutex> lock(mutex_);
    names.reserve(models_.size());
    for (const auto& [name, _] : models_) names.push_back(name);
  }
  std::sort(names.begin(), names.end());
  return names;
}

size_t ModelRegistry::size() const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  return models_.size();
}

}  // namespace spca::serve
