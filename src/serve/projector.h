#ifndef SPCA_SERVE_PROJECTOR_H_
#define SPCA_SERVE_PROJECTOR_H_

#include <cstddef>
#include <memory>

#include "common/status.h"
#include "core/pca_model.h"
#include "linalg/dense_matrix.h"
#include "linalg/sparse_matrix.h"

namespace spca::serve {

/// The serving-side projection operator for one PPCA model: maps a query
/// row y to its posterior-mean latent coordinates
///
///   x = (C'C + ss*I)^{-1} C' (y - mean)
///
/// (the E-step mean of Algorithm 1, evaluated for a single row at query
/// time). The d x d factor (C'C + ss*I)^{-1} and the mean's projection
/// C'*mean are precomputed once at load/swap time, so a query costs
/// 2*nnz*d flops for the sparse C'y product plus 2*d^2 for the factor
/// multiply — the same linalg kernels the training inner loops use.
///
/// A Projector is immutable after Create(); concurrent ProjectSparse /
/// ProjectDense calls from any number of worker threads are safe. Batched
/// execution calls exactly these per-row entry points, so batched results
/// are bit-identical to row-at-a-time execution by construction.
class Projector {
 public:
  /// Precomputes the factor; fails when C'C + ss*I is numerically singular
  /// (e.g. a zero component column with ss == 0).
  static StatusOr<Projector> Create(core::PcaModel model);

  const core::PcaModel& model() const { return model_; }
  size_t input_dim() const { return model_.input_dim(); }
  size_t num_components() const { return model_.num_components(); }

  /// Projects one sparse query row (indices < input_dim) into out[0..d).
  void ProjectSparse(linalg::SparseRowView row, double* out) const;

  /// Projects one dense query row of input_dim values into out[0..d).
  void ProjectDense(const double* row, double* out) const;

  /// Convenience wrappers returning a fresh vector.
  linalg::DenseVector Project(const linalg::SparseVector& query) const;
  linalg::DenseVector Project(const linalg::DenseVector& query) const;

  /// Stored (non-zero) loadings of C, counted once at Create. Dense models
  /// have input_dim * num_components; sparse-loadings models (the
  /// L1-thresholded sketch::SparsePpca family) proportionally fewer.
  uint64_t component_nnz() const { return component_nnz_; }

  /// Floating-point work of one query with `nnz` stored entries (serving
  /// throughput accounting; mirrors the engine's task flop counting). The
  /// C'y product only multiplies the stored loadings of the touched rows,
  /// so sparse-loadings models are charged proportionally less: for a
  /// fully dense C this is exactly 2*nnz*d + d + 2*d^2.
  uint64_t QueryFlops(size_t nnz) const {
    const uint64_t d = num_components();
    const uint64_t dim = input_dim();
    return 2ull * nnz * component_nnz_ / (dim == 0 ? 1 : dim) + d +
           2ull * d * d;
  }

 private:
  Projector() = default;

  /// Applies the precomputed factor to the centered C'y product in
  /// `scratch` (size d), writing the final coordinates to out.
  void FinishProjection(double* scratch, double* out) const;

  core::PcaModel model_;
  linalg::DenseMatrix factor_;           // (C'C + ss*I)^{-1}, d x d
  linalg::DenseVector mean_projection_;  // C' * mean, d
  uint64_t component_nnz_ = 0;           // non-zero loadings of C
};

}  // namespace spca::serve

#endif  // SPCA_SERVE_PROJECTOR_H_
