#include "serve/service.h"

#include <algorithm>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "linalg/kernel_dispatch.h"
#include "obs/runtime.h"

namespace spca::serve {

const char* RequestOutcomeToString(RequestOutcome outcome) {
  switch (outcome) {
    case RequestOutcome::kOk:
      return "OK";
    case RequestOutcome::kShed:
      return "SHED";
    case RequestOutcome::kDeadlineExceeded:
      return "DEADLINE_EXCEEDED";
    case RequestOutcome::kNoModel:
      return "NO_MODEL";
    case RequestOutcome::kBadRequest:
      return "BAD_REQUEST";
    case RequestOutcome::kShutdown:
      return "SHUTDOWN";
  }
  return "UNKNOWN";
}

ProjectionService::ProjectionService(ModelRegistry* models,
                                     ServiceOptions options)
    : models_(models),
      options_(options),
      epoch_(std::chrono::steady_clock::now()),
      pool_(options.num_threads) {
  SPCA_CHECK(models_ != nullptr);
  SPCA_CHECK_GT(options_.batch_max, 0u);
  // Every projection this service executes runs on the dispatched kernel
  // tier; stamp it so a metrics dump or trace says which one served.
  obs::RecordKernelIsa(options_.metrics, linalg::kernels::DispatchedIsaName(),
                       static_cast<int>(linalg::kernels::DispatchedIsa()));
  if (obs::Registry* metrics = options_.metrics; metrics != nullptr) {
    hot_.requests = metrics->counter("serve.requests");
    hot_.shed = metrics->counter("serve.shed");
    hot_.ok = metrics->counter("serve.ok");
    hot_.batches = metrics->counter("serve.batches");
    hot_.deadline_exceeded = metrics->counter("serve.deadline_exceeded");
    hot_.no_model = metrics->counter("serve.no_model");
    hot_.bad_request = metrics->counter("serve.bad_request");
    hot_.query_flops = metrics->counter("serve.query_flops");
    hot_.latency_sec = metrics->histogram("serve.latency_sec");
    hot_.queue_sec = metrics->histogram("serve.queue_sec");
    hot_.batch_size = metrics->histogram("serve.batch_size");
    hot_.batch_exec_sec = metrics->histogram("serve.batch_exec_sec");
  }
}

ProjectionService::~ProjectionService() { Stop(); }

Status ProjectionService::Start() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (started_) return Status::FailedPrecondition("service already started");
  if (stopping_) return Status::FailedPrecondition("service already stopped");
  started_ = true;
  dispatcher_ = std::thread([this] { DispatchLoop(); });
  return Status::Ok();
}

void ProjectionService::Stop() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) return;
    stopping_ = true;
  }
  queue_cv_.notify_all();
  if (dispatcher_.joinable()) dispatcher_.join();
  // The dispatcher is gone; whatever it left queued is never executing.
  std::deque<Pending> leftover;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    leftover.swap(queue_);
  }
  for (auto& pending : leftover) {
    ProjectionResponse response;
    response.outcome = RequestOutcome::kShutdown;
    Resolve(&pending, std::move(response));
  }
}

std::future<ProjectionResponse> ProjectionService::Submit(
    ProjectionRequest request) {
  auto promise = std::make_shared<std::promise<ProjectionResponse>>();
  std::future<ProjectionResponse> future = promise->get_future();
  Pending pending;
  pending.request = std::move(request);
  pending.callback = [promise = std::move(promise)](
                         ProjectionResponse response) {
    promise->set_value(std::move(response));
  };
  Enqueue(std::move(pending), /*notify=*/true);
  return future;
}

void ProjectionService::SubmitWithCallback(
    ProjectionRequest request, std::function<void(ProjectionResponse)> done,
    bool defer_notify) {
  Pending pending;
  pending.request = std::move(request);
  pending.callback = std::move(done);
  Enqueue(std::move(pending), /*notify=*/!defer_notify);
}

void ProjectionService::Kick() { queue_cv_.notify_one(); }

void ProjectionService::Enqueue(Pending pending, bool notify) {
  pending.submit_sec = NowSeconds();
  pending.deadline_sec = pending.submit_sec + pending.request.timeout_sec;

  if (hot_.requests != nullptr) hot_.requests->Add(1);

  RequestOutcome reject = RequestOutcome::kOk;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) {
      reject = RequestOutcome::kShutdown;
    } else if (queue_.size() >= options_.queue_capacity) {
      reject = RequestOutcome::kShed;
    } else {
      queue_.push_back(std::move(pending));
    }
  }
  if (reject == RequestOutcome::kOk) {
    if (notify) queue_cv_.notify_one();
    return;
  }
  if (hot_.shed != nullptr && reject == RequestOutcome::kShed) {
    hot_.shed->Add(1);
  }
  ProjectionResponse response;
  response.outcome = reject;
  Resolve(&pending, std::move(response));
}

void ProjectionService::ResizePool(size_t num_threads) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    resize_threads_ = std::max<size_t>(1, num_threads);
  }
  queue_cv_.notify_one();
}

size_t ProjectionService::queue_depth() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size();
}

void ProjectionService::DispatchLoop() {
  for (;;) {
    std::deque<Pending> batch;
    size_t resize_to = 0;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      queue_cv_.wait(lock, [this] {
        return stopping_ || !queue_.empty() || resize_threads_ != 0;
      });
      if (stopping_) return;  // Stop() resolves the remainder as kShutdown
      resize_to = resize_threads_;
      resize_threads_ = 0;
      const size_t take = std::min(queue_.size(), options_.batch_max);
      for (size_t i = 0; i < take; ++i) {
        batch.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
    }
    // The dispatcher is the only thread that ever calls pool_.Run, so
    // resizing between batches is exactly the pool's contract ("driver
    // thread, no Run in flight").
    if (resize_to != 0 && resize_to != pool_.num_threads()) {
      pool_.Resize(resize_to);
      if (options_.metrics != nullptr) {
        options_.metrics->counter("serve.pool_resizes")->Add(1);
        options_.metrics->gauge("serve.pool_threads")
            ->Set(static_cast<double>(resize_to));
      }
    }
    if (!batch.empty()) ExecuteBatch(&batch);
  }
}

void ProjectionService::ExecuteBatch(std::deque<Pending>* batch) {
  obs::Registry* metrics = options_.metrics;
  const double formed_sec = NowSeconds();

  // Triage: expire deadlines, snapshot one projector per distinct model
  // name (the hot-swap point: this batch keeps its snapshots even if the
  // registry swaps mid-flight), and validate shapes.
  std::unordered_map<std::string, std::shared_ptr<const Projector>> snapshots;
  struct Item {
    Pending* pending;
    const Projector* projector;
    linalg::DenseVector out;
  };
  std::vector<Item> items;
  items.reserve(batch->size());
  uint64_t flops = 0;
  uint64_t expired = 0, no_model = 0, bad_request = 0;
  for (auto& pending : *batch) {
    RequestOutcome outcome = RequestOutcome::kOk;
    const Projector* projector = nullptr;
    if (formed_sec > pending.deadline_sec) {
      outcome = RequestOutcome::kDeadlineExceeded;
      ++expired;
    } else {
      auto it = snapshots.find(pending.request.model);
      if (it == snapshots.end()) {
        it = snapshots.emplace(pending.request.model,
                               models_->Get(pending.request.model))
                 .first;
      }
      projector = it->second.get();
      if (projector == nullptr) {
        outcome = RequestOutcome::kNoModel;
        ++no_model;
      } else if (pending.request.dim() != projector->input_dim()) {
        outcome = RequestOutcome::kBadRequest;
        ++bad_request;
      }
    }
    if (outcome != RequestOutcome::kOk) {
      ProjectionResponse response;
      response.outcome = outcome;
      response.queue_sec = formed_sec - pending.submit_sec;
      response.total_sec = NowSeconds() - pending.submit_sec;
      response.batch_size = batch->size();
      Resolve(&pending, std::move(response));
      continue;
    }
    flops += projector->QueryFlops(pending.request.nnz());
    items.push_back(Item{&pending, projector,
                         linalg::DenseVector(projector->num_components())});
  }

  // Fan the surviving rows out across the pool: one task per query row,
  // each calling the identical per-row projection a sequential caller
  // would — batching affects scheduling only, never arithmetic.
  if (!items.empty()) {
    const auto run_row = [&items](size_t i) {
      Item& item = items[i];
      const ProjectionRequest& request = item.pending->request;
      if (request.is_dense()) {
        item.projector->ProjectDense(request.dense.data(), item.out.data());
      } else {
        item.projector->ProjectSparse(request.sparse.View(), item.out.data());
      }
    };
    if (pool_.num_threads() == 1) {
      // A one-thread pool adds two context switches per batch for zero
      // parallelism; run the rows inline on the dispatcher instead. Same
      // per-row calls in the same order — bit-identical results.
      for (size_t i = 0; i < items.size(); ++i) run_row(i);
    } else {
      pool_.Run(items.size(), run_row);
    }
  }
  const double done_sec = NowSeconds();

  // One ObserveMany per histogram per batch: recording per request would
  // contend on the (shard-shared) histogram mutex half a million times a
  // second at socket saturation.
  std::vector<double> latencies, queue_waits;
  if (metrics != nullptr) {
    latencies.reserve(items.size());
    queue_waits.reserve(items.size());
  }
  for (auto& item : items) {
    ProjectionResponse response;
    response.outcome = RequestOutcome::kOk;
    response.coordinates = std::move(item.out);
    response.queue_sec = formed_sec - item.pending->submit_sec;
    response.total_sec = done_sec - item.pending->submit_sec;
    response.batch_size = batch->size();
    if (metrics != nullptr) {
      latencies.push_back(response.total_sec);
      queue_waits.push_back(response.queue_sec);
    }
    Resolve(item.pending, std::move(response));
  }
  if (metrics != nullptr) {
    hot_.latency_sec->ObserveMany(latencies.data(), latencies.size());
    hot_.queue_sec->ObserveMany(queue_waits.data(), queue_waits.size());
  }

  if (metrics != nullptr) {
    hot_.batches->Add(1);
    hot_.ok->Add(static_cast<double>(items.size()));
    if (expired > 0) {
      hot_.deadline_exceeded->Add(static_cast<double>(expired));
    }
    if (no_model > 0) {
      hot_.no_model->Add(static_cast<double>(no_model));
    }
    if (bad_request > 0) {
      hot_.bad_request->Add(static_cast<double>(bad_request));
    }
    hot_.query_flops->Add(static_cast<double>(flops));
    hot_.batch_size->Observe(static_cast<double>(batch->size()));
    hot_.batch_exec_sec->Observe(done_sec - formed_sec);
    // AddCompleteSpan is mutex-protected (unlike the RAII span stack), so
    // recording from the dispatcher thread is safe.
    if (options_.record_batch_spans) {
      metrics->AddCompleteSpan(
          "serve.batch", "serve", obs::Track::kWall, formed_sec,
          done_sec - formed_sec, /*parent_id=*/0,
          {{"batch_size", static_cast<uint64_t>(batch->size())},
           {"ok", static_cast<uint64_t>(items.size())},
           {"expired", expired},
           {"flops", flops}});
    }
    if (options_.notify_job_listener) metrics->NotifyJobCompleted();
  }
}

void ProjectionService::Resolve(Pending* pending,
                                ProjectionResponse response) {
  pending->callback(std::move(response));
}

}  // namespace spca::serve
