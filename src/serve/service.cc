#include "serve/service.h"

#include <algorithm>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

namespace spca::serve {

const char* RequestOutcomeToString(RequestOutcome outcome) {
  switch (outcome) {
    case RequestOutcome::kOk:
      return "OK";
    case RequestOutcome::kShed:
      return "SHED";
    case RequestOutcome::kDeadlineExceeded:
      return "DEADLINE_EXCEEDED";
    case RequestOutcome::kNoModel:
      return "NO_MODEL";
    case RequestOutcome::kBadRequest:
      return "BAD_REQUEST";
    case RequestOutcome::kShutdown:
      return "SHUTDOWN";
  }
  return "UNKNOWN";
}

ProjectionService::ProjectionService(ModelRegistry* models,
                                     ServiceOptions options)
    : models_(models),
      options_(options),
      epoch_(std::chrono::steady_clock::now()),
      pool_(options.num_threads) {
  SPCA_CHECK(models_ != nullptr);
  SPCA_CHECK_GT(options_.batch_max, 0u);
}

ProjectionService::~ProjectionService() { Stop(); }

Status ProjectionService::Start() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (started_) return Status::FailedPrecondition("service already started");
  if (stopping_) return Status::FailedPrecondition("service already stopped");
  started_ = true;
  dispatcher_ = std::thread([this] { DispatchLoop(); });
  return Status::Ok();
}

void ProjectionService::Stop() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) return;
    stopping_ = true;
  }
  queue_cv_.notify_all();
  if (dispatcher_.joinable()) dispatcher_.join();
  // The dispatcher is gone; whatever it left queued is never executing.
  std::deque<Pending> leftover;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    leftover.swap(queue_);
  }
  for (auto& pending : leftover) {
    ProjectionResponse response;
    response.outcome = RequestOutcome::kShutdown;
    Resolve(&pending, std::move(response));
  }
}

std::future<ProjectionResponse> ProjectionService::Submit(
    ProjectionRequest request) {
  Pending pending;
  pending.submit_sec = NowSeconds();
  pending.deadline_sec = pending.submit_sec + request.timeout_sec;
  pending.request = std::move(request);
  std::future<ProjectionResponse> future = pending.promise.get_future();

  obs::Registry* metrics = options_.metrics;
  if (metrics != nullptr) metrics->counter("serve.requests")->Add(1);

  RequestOutcome reject = RequestOutcome::kOk;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) {
      reject = RequestOutcome::kShutdown;
    } else if (queue_.size() >= options_.queue_capacity) {
      reject = RequestOutcome::kShed;
    } else {
      queue_.push_back(std::move(pending));
    }
  }
  if (reject == RequestOutcome::kOk) {
    queue_cv_.notify_one();
    return future;
  }
  if (metrics != nullptr && reject == RequestOutcome::kShed) {
    metrics->counter("serve.shed")->Add(1);
  }
  ProjectionResponse response;
  response.outcome = reject;
  Resolve(&pending, std::move(response));
  return future;
}

size_t ProjectionService::queue_depth() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size();
}

void ProjectionService::DispatchLoop() {
  for (;;) {
    std::deque<Pending> batch;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      queue_cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (stopping_) return;  // Stop() resolves the remainder as kShutdown
      const size_t take = std::min(queue_.size(), options_.batch_max);
      for (size_t i = 0; i < take; ++i) {
        batch.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
    }
    ExecuteBatch(&batch);
  }
}

void ProjectionService::ExecuteBatch(std::deque<Pending>* batch) {
  obs::Registry* metrics = options_.metrics;
  const double formed_sec = NowSeconds();

  // Triage: expire deadlines, snapshot one projector per distinct model
  // name (the hot-swap point: this batch keeps its snapshots even if the
  // registry swaps mid-flight), and validate shapes.
  std::unordered_map<std::string, std::shared_ptr<const Projector>> snapshots;
  struct Item {
    Pending* pending;
    const Projector* projector;
    linalg::DenseVector out;
  };
  std::vector<Item> items;
  items.reserve(batch->size());
  uint64_t flops = 0;
  uint64_t expired = 0, no_model = 0, bad_request = 0;
  for (auto& pending : *batch) {
    RequestOutcome outcome = RequestOutcome::kOk;
    const Projector* projector = nullptr;
    if (formed_sec > pending.deadline_sec) {
      outcome = RequestOutcome::kDeadlineExceeded;
      ++expired;
    } else {
      auto it = snapshots.find(pending.request.model);
      if (it == snapshots.end()) {
        it = snapshots.emplace(pending.request.model,
                               models_->Get(pending.request.model))
                 .first;
      }
      projector = it->second.get();
      if (projector == nullptr) {
        outcome = RequestOutcome::kNoModel;
        ++no_model;
      } else if (pending.request.dim() != projector->input_dim()) {
        outcome = RequestOutcome::kBadRequest;
        ++bad_request;
      }
    }
    if (outcome != RequestOutcome::kOk) {
      ProjectionResponse response;
      response.outcome = outcome;
      response.queue_sec = formed_sec - pending.submit_sec;
      response.total_sec = NowSeconds() - pending.submit_sec;
      response.batch_size = batch->size();
      Resolve(&pending, std::move(response));
      continue;
    }
    flops += projector->QueryFlops(pending.request.nnz());
    items.push_back(Item{&pending, projector,
                         linalg::DenseVector(projector->num_components())});
  }

  // Fan the surviving rows out across the pool: one task per query row,
  // each calling the identical per-row projection a sequential caller
  // would — batching affects scheduling only, never arithmetic.
  if (!items.empty()) {
    pool_.Run(items.size(), [&items](size_t i) {
      Item& item = items[i];
      const ProjectionRequest& request = item.pending->request;
      if (request.is_dense()) {
        item.projector->ProjectDense(request.dense.data(), item.out.data());
      } else {
        item.projector->ProjectSparse(request.sparse.View(), item.out.data());
      }
    });
  }
  const double done_sec = NowSeconds();

  for (auto& item : items) {
    ProjectionResponse response;
    response.outcome = RequestOutcome::kOk;
    response.coordinates = std::move(item.out);
    response.queue_sec = formed_sec - item.pending->submit_sec;
    response.total_sec = done_sec - item.pending->submit_sec;
    response.batch_size = batch->size();
    if (metrics != nullptr) {
      metrics->histogram("serve.latency_sec")->Observe(response.total_sec);
      metrics->histogram("serve.queue_sec")->Observe(response.queue_sec);
    }
    Resolve(item.pending, std::move(response));
  }

  if (metrics != nullptr) {
    metrics->counter("serve.batches")->Add(1);
    metrics->counter("serve.ok")->Add(static_cast<double>(items.size()));
    if (expired > 0) {
      metrics->counter("serve.deadline_exceeded")
          ->Add(static_cast<double>(expired));
    }
    if (no_model > 0) {
      metrics->counter("serve.no_model")->Add(static_cast<double>(no_model));
    }
    if (bad_request > 0) {
      metrics->counter("serve.bad_request")
          ->Add(static_cast<double>(bad_request));
    }
    metrics->counter("serve.query_flops")->Add(static_cast<double>(flops));
    metrics->histogram("serve.batch_size")
        ->Observe(static_cast<double>(batch->size()));
    metrics->histogram("serve.batch_exec_sec")->Observe(done_sec - formed_sec);
    // AddCompleteSpan is mutex-protected (unlike the RAII span stack), so
    // recording from the dispatcher thread is safe.
    metrics->AddCompleteSpan(
        "serve.batch", "serve", obs::Track::kWall, formed_sec,
        done_sec - formed_sec, /*parent_id=*/0,
        {{"batch_size", static_cast<uint64_t>(batch->size())},
         {"ok", static_cast<uint64_t>(items.size())},
         {"expired", expired},
         {"flops", flops}});
    if (options_.notify_job_listener) metrics->NotifyJobCompleted();
  }
}

void ProjectionService::Resolve(Pending* pending,
                                ProjectionResponse response) {
  pending->promise.set_value(std::move(response));
}

}  // namespace spca::serve
