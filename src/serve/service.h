#ifndef SPCA_SERVE_SERVICE_H_
#define SPCA_SERVE_SERVICE_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <limits>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "common/status.h"
#include "dist/worker_pool.h"
#include "linalg/dense_matrix.h"
#include "linalg/sparse_matrix.h"
#include "obs/registry.h"
#include "serve/model_registry.h"

namespace spca::serve {

/// Terminal state of one projection request.
enum class RequestOutcome {
  kOk = 0,
  kShed,              // rejected at admission: queue at capacity
  kDeadlineExceeded,  // expired while queued
  kNoModel,           // named model not in the registry at execution time
  kBadRequest,        // query dimensionality does not match the model
  kShutdown,          // service stopped before the request was executed
};

const char* RequestOutcomeToString(RequestOutcome outcome);

/// One query row to project. The sparse representation is the common case
/// (the paper's workloads are sparse bag-of-words rows); set `dense`
/// non-empty to take the dense-row kernel path instead.
struct ProjectionRequest {
  std::string model;           // name in the ModelRegistry
  uint64_t tenant = 0;         // multi-tenant accounting only; never routing
  linalg::SparseVector sparse;
  linalg::DenseVector dense;   // dense path when size() > 0
  /// Seconds the request may wait before execution starts, measured from
  /// Submit(). A batch whose formation happens after the deadline resolves
  /// the request kDeadlineExceeded without executing it. Values <= 0 expire
  /// immediately (useful for deterministic tests); the default never does.
  double timeout_sec = std::numeric_limits<double>::infinity();

  bool is_dense() const { return dense.size() > 0; }
  size_t dim() const { return is_dense() ? dense.size() : sparse.dim(); }
  size_t nnz() const { return is_dense() ? dense.size() : sparse.nnz(); }
};

struct ProjectionResponse {
  RequestOutcome outcome = RequestOutcome::kShutdown;
  linalg::DenseVector coordinates;  // d latent coordinates when kOk
  double queue_sec = 0.0;           // Submit() -> batch formation
  double total_sec = 0.0;           // Submit() -> response resolution
  uint64_t batch_size = 0;          // requests in the executing batch
};

struct ServiceOptions {
  size_t num_threads = 4;        // worker pool threads executing batches
  size_t batch_max = 64;         // max requests coalesced into one batch
  size_t queue_capacity = 1024;  // admission control: shed above this
  /// Optional metrics/span sink (serve.* counters, latency histograms and
  /// one serve.batch span per executed batch).
  obs::Registry* metrics = nullptr;
  /// When set (and `metrics` is set), every executed batch also fires the
  /// registry's job-completion hook so an attached TraceStreamer flushes
  /// serve.batch spans incrementally. Leave false when a driver thread is
  /// concurrently running engine jobs against the same registry — the
  /// streamer is single-thread-driven.
  bool notify_job_listener = false;
  /// Record one serve.batch span per executed batch. Spans accumulate in
  /// the registry (and serialize on its mutex); a saturated multi-shard
  /// socket bench executes tens of thousands of batches a second, so the
  /// high-throughput path turns this off. Counters and histograms are
  /// unaffected.
  bool record_batch_spans = true;
};

/// The batched projection front-end: requests enter a bounded queue,
/// a dispatcher thread coalesces them into batches of at most batch_max,
/// and each batch fans out across a dist::WorkerPool — the same executor
/// the training engine uses — with one task per query row. Batching
/// changes only scheduling, never arithmetic: every row is projected by
/// the same Projector entry point a row-at-a-time caller would use, so
/// batched results are bit-identical to unbatched ones.
///
/// Lifecycle: construct -> (optionally Submit while cold) -> Start() ->
/// Stop(). Requests submitted before Start() queue up (still subject to
/// admission control) and execute once the dispatcher runs — tests use
/// this to exercise shedding and deadlines deterministically. Stop()
/// resolves anything still queued as kShutdown.
class ProjectionService {
 public:
  /// `models` must outlive the service.
  ProjectionService(ModelRegistry* models, ServiceOptions options);
  ~ProjectionService();

  ProjectionService(const ProjectionService&) = delete;
  ProjectionService& operator=(const ProjectionService&) = delete;

  /// Launches the dispatcher. Fails if already started.
  Status Start();

  /// Stops the dispatcher, joins it, and resolves queued requests as
  /// kShutdown. Idempotent; also called by the destructor.
  void Stop();

  /// Enqueues one request. Always returns a future that will be resolved:
  /// immediately (kShed when the queue is full, kShutdown after Stop) or
  /// by the dispatcher once the request's batch executes.
  std::future<ProjectionResponse> Submit(ProjectionRequest request);

  /// Callback flavor of Submit for the socket front-end: no promise/future
  /// machinery per request. The callback is invoked exactly once — inline
  /// on the submitting thread for immediate rejections (kShed/kShutdown),
  /// on the dispatcher thread otherwise — and must not re-enter the
  /// service.
  ///
  /// `defer_notify` enqueues without waking the dispatcher; the caller
  /// MUST follow a deferred burst with Kick() or the requests sit until
  /// the next undeferred submit. The socket front-end submits a whole
  /// read burst deferred and kicks once — the dispatcher then forms one
  /// big batch instead of preempting the parser after every frame.
  void SubmitWithCallback(ProjectionRequest request,
                          std::function<void(ProjectionResponse)> done,
                          bool defer_notify = false);

  /// Wakes the dispatcher; pairs with defer_notify submits.
  void Kick();

  /// Requests the dispatcher resize its worker pool to `num_threads`
  /// (at least 1) between batches — in-flight batches finish on the old
  /// pool. Returns immediately; the resize lands before the next batch
  /// executes. Safe to call concurrently with Submit from any thread.
  void ResizePool(size_t num_threads);

  size_t queue_depth() const;
  const ServiceOptions& options() const { return options_; }

  /// The clock queue_sec/total_sec and deadlines are measured on. When a
  /// metrics registry is attached this is its wall clock, so serve.batch
  /// span timestamps land on the same epoch as every other span in the
  /// trace; otherwise seconds since service construction.
  double NowSeconds() const {
    if (options_.metrics != nullptr) return options_.metrics->NowSeconds();
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         epoch_)
        .count();
  }

 private:
  struct Pending {
    ProjectionRequest request;
    /// Invoked exactly once with the response. Submit() wraps a promise in
    /// one of these; the socket path passes its own, so no per-request
    /// promise shared-state allocation happens off the future path.
    std::function<void(ProjectionResponse)> callback;
    double submit_sec = 0.0;
    double deadline_sec = 0.0;
  };

  void DispatchLoop();
  void ExecuteBatch(std::deque<Pending>* batch);
  void Resolve(Pending* pending, ProjectionResponse response);
  void Enqueue(Pending pending, bool notify);

  ModelRegistry* const models_;
  const ServiceOptions options_;
  const std::chrono::steady_clock::time_point epoch_;
  dist::WorkerPool pool_;

  /// Hot-path metric handles, resolved once at construction (registry
  /// pointers are stable): name lookups cost a map walk per call, which
  /// a saturated socket path pays hundreds of thousands of times a
  /// second. All null when options_.metrics is null.
  struct HotMetrics {
    obs::Counter* requests = nullptr;
    obs::Counter* shed = nullptr;
    obs::Counter* ok = nullptr;
    obs::Counter* batches = nullptr;
    obs::Counter* deadline_exceeded = nullptr;
    obs::Counter* no_model = nullptr;
    obs::Counter* bad_request = nullptr;
    obs::Counter* query_flops = nullptr;
    obs::Histogram* latency_sec = nullptr;
    obs::Histogram* queue_sec = nullptr;
    obs::Histogram* batch_size = nullptr;
    obs::Histogram* batch_exec_sec = nullptr;
  };
  HotMetrics hot_;

  mutable std::mutex mutex_;
  std::condition_variable queue_cv_;
  std::deque<Pending> queue_;
  size_t resize_threads_ = 0;  // pending ResizePool request; 0 = none
  bool started_ = false;
  bool stopping_ = false;
  std::thread dispatcher_;
};

}  // namespace spca::serve

#endif  // SPCA_SERVE_SERVICE_H_
