#include "serve/model_io.h"

#include <cstdio>
#include <cstring>
#include <vector>

namespace spca::serve {

namespace {

// Dimensions above this are rejected as corrupt rather than attempted as
// allocations (a flipped high byte in a header must not OOM the server).
constexpr uint64_t kMaxDim = 1ull << 32;
constexpr uint64_t kMaxElements = 1ull << 34;  // 128 GiB of doubles

constexpr size_t kHeaderBytes =
    sizeof(uint32_t) * 2 + sizeof(uint64_t) * 2 + sizeof(double);

void AppendBytes(std::string* out, const void* data, size_t size) {
  out->append(static_cast<const char*>(data), size);
}

}  // namespace

uint64_t Fnv1a64(const void* data, size_t size, uint64_t seed) {
  constexpr uint64_t kPrime = 0x100000001b3ull;
  uint64_t hash = seed;
  const auto* bytes = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < size; ++i) {
    hash ^= bytes[i];
    hash *= kPrime;
  }
  return hash;
}

uint64_t ModelFileSize(uint64_t input_dim, uint64_t num_components) {
  return kHeaderBytes + (input_dim + input_dim * num_components) *
                            sizeof(double) +
         sizeof(uint64_t);
}

Status SaveModel(const core::PcaModel& model, const std::string& path) {
  SPCA_CHECK_EQ(model.mean.size(), model.input_dim());
  const uint64_t d_in = model.input_dim();
  const uint64_t d_out = model.num_components();

  std::string payload;
  payload.reserve(static_cast<size_t>(ModelFileSize(d_in, d_out)));
  AppendBytes(&payload, &kModelMagic, sizeof(kModelMagic));
  AppendBytes(&payload, &kModelFormatVersion, sizeof(kModelFormatVersion));
  AppendBytes(&payload, &d_in, sizeof(d_in));
  AppendBytes(&payload, &d_out, sizeof(d_out));
  AppendBytes(&payload, &model.noise_variance, sizeof(double));
  AppendBytes(&payload, model.mean.data(), model.mean.size() * sizeof(double));
  AppendBytes(&payload, model.components.data(),
              model.components.size() * sizeof(double));
  const uint64_t checksum = Fnv1a64(payload.data(), payload.size());
  AppendBytes(&payload, &checksum, sizeof(checksum));

  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Status::Internal("cannot open " + path + " for writing");
  }
  const size_t written = std::fwrite(payload.data(), 1, payload.size(), f);
  const int close_result = std::fclose(f);
  if (written != payload.size() || close_result != 0) {
    return Status::Internal("short write to " + path);
  }
  return Status::Ok();
}

StatusOr<core::PcaModel> LoadModel(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::NotFound("cannot open model " + path);
  std::string content;
  char buf[1 << 16];
  size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) content.append(buf, n);
  const bool read_error = std::ferror(f) != 0;
  std::fclose(f);
  if (read_error) return Status::Internal("read failed for " + path);

  auto corrupt = [&path](const std::string& why) {
    return Status::InvalidArgument("corrupt model " + path + ": " + why);
  };
  if (content.size() < kHeaderBytes + sizeof(uint64_t)) {
    return corrupt("truncated header");
  }
  size_t offset = 0;
  auto read_pod = [&content, &offset](auto* out) {
    std::memcpy(out, content.data() + offset, sizeof(*out));
    offset += sizeof(*out);
  };
  uint32_t magic = 0;
  uint32_t version = 0;
  uint64_t d_in = 0;
  uint64_t d_out = 0;
  double noise_variance = 0.0;
  read_pod(&magic);
  read_pod(&version);
  read_pod(&d_in);
  read_pod(&d_out);
  read_pod(&noise_variance);
  if (magic != kModelMagic) return corrupt("bad magic");
  if (version != kModelFormatVersion) {
    return corrupt("unsupported format version " + std::to_string(version));
  }
  if (d_in == 0 || d_out == 0) return corrupt("zero dimension");
  if (d_in > kMaxDim || d_out > kMaxDim || d_in * d_out > kMaxElements) {
    return corrupt("implausible dimensions");
  }
  if (content.size() != ModelFileSize(d_in, d_out)) {
    return corrupt("file size does not match header dimensions");
  }
  const size_t payload_size = content.size() - sizeof(uint64_t);
  uint64_t stored_checksum = 0;
  std::memcpy(&stored_checksum, content.data() + payload_size,
              sizeof(stored_checksum));
  if (Fnv1a64(content.data(), payload_size) != stored_checksum) {
    return corrupt("checksum mismatch");
  }

  core::PcaModel model;
  model.noise_variance = noise_variance;
  model.mean = linalg::DenseVector(static_cast<size_t>(d_in));
  std::memcpy(model.mean.data(), content.data() + offset,
              static_cast<size_t>(d_in) * sizeof(double));
  offset += static_cast<size_t>(d_in) * sizeof(double);
  model.components = linalg::DenseMatrix(static_cast<size_t>(d_in),
                                         static_cast<size_t>(d_out));
  std::memcpy(model.components.data(), content.data() + offset,
              static_cast<size_t>(d_in * d_out) * sizeof(double));
  return model;
}

namespace {

// Caps on sidecar counts: far above anything a solver writes, low enough
// that a corrupted length field cannot drive a giant allocation.
constexpr uint64_t kMaxCheckpointKeyLen = 256;
constexpr uint64_t kMaxCheckpointEntries = 4096;

void AppendKey(std::string* out, const std::string& key) {
  const uint64_t len = key.size();
  AppendBytes(out, &len, sizeof(len));
  AppendBytes(out, key.data(), key.size());
}

Status WriteFileAtomicallyEnough(const std::string& payload,
                                 const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Status::Internal("cannot open " + path + " for writing");
  }
  const size_t written = std::fwrite(payload.data(), 1, payload.size(), f);
  const int close_result = std::fclose(f);
  if (written != payload.size() || close_result != 0) {
    return Status::Internal("short write to " + path);
  }
  return Status::Ok();
}

}  // namespace

Status SaveSolverState(const core::SolverCheckpoint& checkpoint,
                       const std::string& path) {
  if (checkpoint.solver.empty() ||
      checkpoint.solver.size() > kMaxCheckpointKeyLen) {
    return Status::InvalidArgument("checkpoint solver name must be 1.." +
                                   std::to_string(kMaxCheckpointKeyLen) +
                                   " bytes");
  }
  std::string payload;
  AppendBytes(&payload, &kCheckpointMagic, sizeof(kCheckpointMagic));
  AppendBytes(&payload, &kCheckpointFormatVersion,
              sizeof(kCheckpointFormatVersion));
  AppendKey(&payload, checkpoint.solver);
  AppendBytes(&payload, &checkpoint.step, sizeof(checkpoint.step));
  AppendBytes(&payload, &checkpoint.rows_seen, sizeof(checkpoint.rows_seen));
  const uint64_t num_scalars = checkpoint.scalars.size();
  AppendBytes(&payload, &num_scalars, sizeof(num_scalars));
  for (const auto& [key, value] : checkpoint.scalars) {
    if (key.empty() || key.size() > kMaxCheckpointKeyLen) {
      return Status::InvalidArgument("bad checkpoint scalar key '" + key +
                                     "'");
    }
    AppendKey(&payload, key);
    AppendBytes(&payload, &value, sizeof(value));
  }
  const uint64_t num_matrices = checkpoint.matrices.size();
  AppendBytes(&payload, &num_matrices, sizeof(num_matrices));
  for (const auto& [key, matrix] : checkpoint.matrices) {
    if (key.empty() || key.size() > kMaxCheckpointKeyLen) {
      return Status::InvalidArgument("bad checkpoint matrix key '" + key +
                                     "'");
    }
    AppendKey(&payload, key);
    const uint64_t rows = matrix.rows();
    const uint64_t cols = matrix.cols();
    AppendBytes(&payload, &rows, sizeof(rows));
    AppendBytes(&payload, &cols, sizeof(cols));
    AppendBytes(&payload, matrix.data(), matrix.size() * sizeof(double));
  }
  const uint64_t checksum = Fnv1a64(payload.data(), payload.size());
  AppendBytes(&payload, &checksum, sizeof(checksum));
  return WriteFileAtomicallyEnough(payload, path);
}

StatusOr<core::SolverCheckpoint> LoadSolverState(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::NotFound("cannot open checkpoint " + path);
  std::string content;
  char buf[1 << 16];
  size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) content.append(buf, n);
  const bool read_error = std::ferror(f) != 0;
  std::fclose(f);
  if (read_error) return Status::Internal("read failed for " + path);

  auto corrupt = [&path](const std::string& why) {
    return Status::InvalidArgument("corrupt checkpoint " + path + ": " + why);
  };
  if (content.size() < sizeof(uint32_t) * 2 + sizeof(uint64_t)) {
    return corrupt("truncated header");
  }
  // Checksum first: everything after it parses from verified bytes.
  const size_t payload_size = content.size() - sizeof(uint64_t);
  uint64_t stored_checksum = 0;
  std::memcpy(&stored_checksum, content.data() + payload_size,
              sizeof(stored_checksum));
  if (Fnv1a64(content.data(), payload_size) != stored_checksum) {
    return corrupt("checksum mismatch");
  }

  size_t offset = 0;
  bool truncated = false;
  auto read_pod = [&](auto* out) {
    if (truncated || payload_size - offset < sizeof(*out)) {
      truncated = true;
      return;
    }
    std::memcpy(out, content.data() + offset, sizeof(*out));
    offset += sizeof(*out);
  };
  auto read_key = [&](std::string* out) -> Status {
    uint64_t len = 0;
    read_pod(&len);
    if (truncated) return Status::Ok();  // caught by the caller's check
    if (len == 0 || len > kMaxCheckpointKeyLen) {
      return Status::InvalidArgument("implausible key length");
    }
    if (payload_size - offset < len) {
      truncated = true;
      return Status::Ok();
    }
    out->assign(content.data() + offset, len);
    offset += len;
    return Status::Ok();
  };

  uint32_t magic = 0;
  uint32_t version = 0;
  read_pod(&magic);
  read_pod(&version);
  if (magic != kCheckpointMagic) return corrupt("bad magic");
  if (version != kCheckpointFormatVersion) {
    return corrupt("unsupported format version " + std::to_string(version));
  }

  core::SolverCheckpoint checkpoint;
  if (!read_key(&checkpoint.solver).ok()) {
    return corrupt("implausible solver name length");
  }
  read_pod(&checkpoint.step);
  read_pod(&checkpoint.rows_seen);
  uint64_t num_scalars = 0;
  read_pod(&num_scalars);
  if (truncated) return corrupt("truncated");
  if (num_scalars > kMaxCheckpointEntries) {
    return corrupt("implausible scalar count");
  }
  for (uint64_t i = 0; i < num_scalars; ++i) {
    std::string key;
    if (!read_key(&key).ok()) return corrupt("implausible scalar key");
    double value = 0.0;
    read_pod(&value);
    if (truncated) return corrupt("truncated scalar table");
    checkpoint.SetScalar(key, value);
  }
  uint64_t num_matrices = 0;
  read_pod(&num_matrices);
  if (truncated) return corrupt("truncated");
  if (num_matrices > kMaxCheckpointEntries) {
    return corrupt("implausible matrix count");
  }
  for (uint64_t i = 0; i < num_matrices; ++i) {
    std::string key;
    if (!read_key(&key).ok()) return corrupt("implausible matrix key");
    uint64_t rows = 0;
    uint64_t cols = 0;
    read_pod(&rows);
    read_pod(&cols);
    if (truncated) return corrupt("truncated matrix table");
    if (rows > kMaxDim || cols > kMaxDim || rows * cols > kMaxElements) {
      return corrupt("implausible matrix dimensions");
    }
    const size_t bytes = static_cast<size_t>(rows * cols) * sizeof(double);
    if (payload_size - offset < bytes) return corrupt("truncated matrix data");
    linalg::DenseMatrix matrix(static_cast<size_t>(rows),
                               static_cast<size_t>(cols));
    std::memcpy(matrix.data(), content.data() + offset, bytes);
    offset += bytes;
    checkpoint.SetMatrix(key, std::move(matrix));
  }
  if (offset != payload_size) return corrupt("trailing garbage");
  return checkpoint;
}

Status SaveCheckpoint(const core::PcaModel& model,
                      const core::SolverCheckpoint& checkpoint,
                      const std::string& path) {
  SPCA_RETURN_IF_ERROR(SaveModel(model, path));
  const Status sidecar =
      SaveSolverState(checkpoint, path + kCheckpointSidecarSuffix);
  if (!sidecar.ok()) {
    // Never leave a model that looks resumable but has no resume state.
    std::remove(path.c_str());
    return sidecar;
  }
  return Status::Ok();
}

StatusOr<LoadedCheckpoint> LoadCheckpoint(const std::string& path) {
  auto model = LoadModel(path);
  if (!model.ok()) return model.status();
  auto state = LoadSolverState(path + kCheckpointSidecarSuffix);
  if (!state.ok()) return state.status();
  LoadedCheckpoint loaded;
  loaded.model = std::move(model).value();
  loaded.state = std::move(state).value();
  return loaded;
}

}  // namespace spca::serve
