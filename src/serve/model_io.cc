#include "serve/model_io.h"

#include <cstdio>
#include <cstring>
#include <vector>

namespace spca::serve {

namespace {

// Dimensions above this are rejected as corrupt rather than attempted as
// allocations (a flipped high byte in a header must not OOM the server).
constexpr uint64_t kMaxDim = 1ull << 32;
constexpr uint64_t kMaxElements = 1ull << 34;  // 128 GiB of doubles

constexpr size_t kHeaderBytes =
    sizeof(uint32_t) * 2 + sizeof(uint64_t) * 2 + sizeof(double);

void AppendBytes(std::string* out, const void* data, size_t size) {
  out->append(static_cast<const char*>(data), size);
}

}  // namespace

uint64_t Fnv1a64(const void* data, size_t size, uint64_t seed) {
  constexpr uint64_t kPrime = 0x100000001b3ull;
  uint64_t hash = seed;
  const auto* bytes = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < size; ++i) {
    hash ^= bytes[i];
    hash *= kPrime;
  }
  return hash;
}

uint64_t ModelFileSize(uint64_t input_dim, uint64_t num_components) {
  return kHeaderBytes + (input_dim + input_dim * num_components) *
                            sizeof(double) +
         sizeof(uint64_t);
}

Status SaveModel(const core::PcaModel& model, const std::string& path) {
  SPCA_CHECK_EQ(model.mean.size(), model.input_dim());
  const uint64_t d_in = model.input_dim();
  const uint64_t d_out = model.num_components();

  std::string payload;
  payload.reserve(static_cast<size_t>(ModelFileSize(d_in, d_out)));
  AppendBytes(&payload, &kModelMagic, sizeof(kModelMagic));
  AppendBytes(&payload, &kModelFormatVersion, sizeof(kModelFormatVersion));
  AppendBytes(&payload, &d_in, sizeof(d_in));
  AppendBytes(&payload, &d_out, sizeof(d_out));
  AppendBytes(&payload, &model.noise_variance, sizeof(double));
  AppendBytes(&payload, model.mean.data(), model.mean.size() * sizeof(double));
  AppendBytes(&payload, model.components.data(),
              model.components.size() * sizeof(double));
  const uint64_t checksum = Fnv1a64(payload.data(), payload.size());
  AppendBytes(&payload, &checksum, sizeof(checksum));

  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Status::Internal("cannot open " + path + " for writing");
  }
  const size_t written = std::fwrite(payload.data(), 1, payload.size(), f);
  const int close_result = std::fclose(f);
  if (written != payload.size() || close_result != 0) {
    return Status::Internal("short write to " + path);
  }
  return Status::Ok();
}

StatusOr<core::PcaModel> LoadModel(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::NotFound("cannot open model " + path);
  std::string content;
  char buf[1 << 16];
  size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) content.append(buf, n);
  const bool read_error = std::ferror(f) != 0;
  std::fclose(f);
  if (read_error) return Status::Internal("read failed for " + path);

  auto corrupt = [&path](const std::string& why) {
    return Status::InvalidArgument("corrupt model " + path + ": " + why);
  };
  if (content.size() < kHeaderBytes + sizeof(uint64_t)) {
    return corrupt("truncated header");
  }
  size_t offset = 0;
  auto read_pod = [&content, &offset](auto* out) {
    std::memcpy(out, content.data() + offset, sizeof(*out));
    offset += sizeof(*out);
  };
  uint32_t magic = 0;
  uint32_t version = 0;
  uint64_t d_in = 0;
  uint64_t d_out = 0;
  double noise_variance = 0.0;
  read_pod(&magic);
  read_pod(&version);
  read_pod(&d_in);
  read_pod(&d_out);
  read_pod(&noise_variance);
  if (magic != kModelMagic) return corrupt("bad magic");
  if (version != kModelFormatVersion) {
    return corrupt("unsupported format version " + std::to_string(version));
  }
  if (d_in == 0 || d_out == 0) return corrupt("zero dimension");
  if (d_in > kMaxDim || d_out > kMaxDim || d_in * d_out > kMaxElements) {
    return corrupt("implausible dimensions");
  }
  if (content.size() != ModelFileSize(d_in, d_out)) {
    return corrupt("file size does not match header dimensions");
  }
  const size_t payload_size = content.size() - sizeof(uint64_t);
  uint64_t stored_checksum = 0;
  std::memcpy(&stored_checksum, content.data() + payload_size,
              sizeof(stored_checksum));
  if (Fnv1a64(content.data(), payload_size) != stored_checksum) {
    return corrupt("checksum mismatch");
  }

  core::PcaModel model;
  model.noise_variance = noise_variance;
  model.mean = linalg::DenseVector(static_cast<size_t>(d_in));
  std::memcpy(model.mean.data(), content.data() + offset,
              static_cast<size_t>(d_in) * sizeof(double));
  offset += static_cast<size_t>(d_in) * sizeof(double);
  model.components = linalg::DenseMatrix(static_cast<size_t>(d_in),
                                         static_cast<size_t>(d_out));
  std::memcpy(model.components.data(), content.data() + offset,
              static_cast<size_t>(d_in * d_out) * sizeof(double));
  return model;
}

}  // namespace spca::serve
