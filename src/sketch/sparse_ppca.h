#ifndef SPCA_SKETCH_SPARSE_PPCA_H_
#define SPCA_SKETCH_SPARSE_PPCA_H_

#include <cstdint>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "core/solver.h"
#include "dist/dist_matrix.h"
#include "dist/engine.h"

namespace spca::sketch {

/// Options for the sparse-loadings PPCA variant.
struct SparsePpcaOptions {
  /// Number of principal components d.
  size_t num_components = 50;
  /// Maximum EM sweeps.
  int max_iterations = 10;
  /// L1 soft-threshold applied entrywise to C after every EM update:
  /// c <- sign(c) * max(|c| - l1_threshold, 0). Each column's
  /// largest-magnitude entry is exempt so no component collapses to zero.
  double l1_threshold = 0.1;
  /// Seed for the random initial C.
  uint64_t seed = 1;
  /// Stop once this fraction of the ideal accuracy is reached (> 1
  /// disables the target).
  double target_accuracy_fraction = 2.0;
  /// Rows in the reconstruction-error sample.
  size_t error_sample_rows = 1000;
  /// Record an accuracy trace point per sweep.
  bool compute_accuracy_trace = true;
  /// When > 0, use this ideal-error anchor instead of fitting one.
  double ideal_error_override = 0.0;
  /// EM iterations for the ideal-error anchor fit.
  int ideal_fit_iterations = 15;
};

/// Sparse-loadings PPCA (Zou-Hastie-Tibshirani's lasso idea grafted onto
/// the paper's distributed EM): runs the same MeanJob / FrobeniusNormJob /
/// YtXJob / ss3Job decomposition as core::Spca, but soft-thresholds C
/// after every sweep, driving most loadings to exactly zero. Sparse C
/// means interpretable components AND proportionally fewer serve-time
/// Projector QueryFlops (the projection C'y only touches stored
/// loadings). Zeroed/total loading counts land in the
/// sketch.sparse_ppca.* metrics.
///
/// Checkpoint/restore follows core::Spca: the thresholded model is the
/// complete resume state (each sweep, thresholding included, is pure in
/// (C, ss, Y)), so a warm start from a checkpoint re-runs the remaining
/// sweeps bit-identically.
class SparsePpca : public core::Solver {
 public:
  /// `engine` must outlive this object.
  SparsePpca(dist::Engine* engine, const SparsePpcaOptions& options)
      : engine_(engine), options_(options) {}

  /// Single-shot fit.
  StatusOr<core::SolveResult> Solve(const dist::DistMatrix& y,
                                    const core::FitOptions& fit = {}) const;

  // Solver surface.
  std::string_view name() const override { return "spca_sparse"; }
  Status Init(const core::FitOptions& options) override;
  Status Step(const dist::DistMatrix& batch) override;
  StatusOr<core::PcaModel> Snapshot() const override;
  StatusOr<core::SolveResult> Result() override;

  /// Restores a checkpoint written by FitOptions::on_checkpoint: the
  /// checkpointed model becomes the warm start of the next Solve/Result.
  Status Restore(const core::PcaModel& model,
                 const core::SolverCheckpoint& checkpoint) override;

  const SparsePpcaOptions& options() const { return options_; }

  /// The soft-threshold operator: sign(x) * max(|x| - threshold, 0).
  static double Shrink(double value, double threshold);

 private:
  StatusOr<core::SolveResult> SolveBuffered() const;

  dist::Engine* engine_;
  SparsePpcaOptions options_;

  // Solver-surface state.
  core::FitOptions solve_options_;
  std::vector<dist::DistMatrix> batches_;
};

}  // namespace spca::sketch

#endif  // SPCA_SKETCH_SPARSE_PPCA_H_
