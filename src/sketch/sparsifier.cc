#include "sketch/sparsifier.h"

#include <algorithm>
#include <utility>

#include "common/check.h"
#include "common/rng.h"
#include "linalg/sparse_matrix.h"

namespace spca::sketch {

using dist::DistMatrix;
using linalg::SparseEntry;
using linalg::SparseMatrix;

namespace {

/// Per-row generator: one independent stream per (seed, row), so the mask
/// depends only on the row's global index. The mix constant is
/// splitmix64's golden-ratio increment; Rng's own seeding scrambles the
/// result further.
Rng RowRng(uint64_t seed, uint64_t row) {
  return Rng(seed ^ ((row + 1) * 0x9e3779b97f4a7c15ull));
}

}  // namespace

DistMatrix Sparsifier::Apply(const DistMatrix& y,
                             obs::Registry* registry) const {
  const double p = options_.keep_probability;
  SPCA_CHECK(p > 0.0 && p <= 1.0);
  const double scale = 1.0 / p;

  SparseMatrix out(y.rows(), y.cols());
  std::vector<SparseEntry> kept_row;
  uint64_t kept = 0;
  for (size_t i = 0; i < y.rows(); ++i) {
    kept_row.clear();
    Rng rng = RowRng(options_.seed, i);
    y.ForEachEntry(i, [&](size_t col, double value) {
      if (rng.NextDouble() < p) {
        kept_row.push_back({static_cast<uint32_t>(col), value * scale});
      }
    });
    kept += kept_row.size();
    out.AppendRow(i, kept_row);
  }

  const size_t num_partitions = std::max<size_t>(1, y.num_partitions());
  DistMatrix result = DistMatrix::FromSparse(std::move(out), num_partitions);
  if (registry != nullptr) {
    registry->counter("sketch.sparsify.input_entries")
        ->Add(static_cast<double>(y.StoredEntries()));
    registry->counter("sketch.sparsify.kept_entries")
        ->Add(static_cast<double>(kept));
    registry->counter("sketch.sparsify.input_bytes")
        ->Add(static_cast<double>(y.ByteSize()));
    registry->counter("sketch.sparsify.output_bytes")
        ->Add(static_cast<double>(result.ByteSize()));
  }
  return result;
}

std::vector<bool> Sparsifier::RowKeepMask(uint64_t row, size_t entries) const {
  std::vector<bool> mask(entries);
  Rng rng = RowRng(options_.seed, row);
  for (size_t k = 0; k < entries; ++k) {
    mask[k] = rng.NextDouble() < options_.keep_probability;
  }
  return mask;
}

}  // namespace spca::sketch
