#ifndef SPCA_SKETCH_RAND_SVD_H_
#define SPCA_SKETCH_RAND_SVD_H_

#include <cstdint>
#include <optional>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "core/solver.h"
#include "dist/dist_matrix.h"
#include "dist/engine.h"
#include "linalg/dense_matrix.h"

namespace spca::sketch {

/// Options for the randomized range-finder solver.
struct RandSvdOptions {
  /// Number of principal components d.
  size_t num_components = 50;
  /// Sketch width k (columns of Omega). 0 means num_components +
  /// oversampling, clamped to the matrix dimensions.
  size_t sketch_dim = 0;
  /// Extra sketch columns when sketch_dim is 0 (Halko et al. recommend
  /// 5-10).
  size_t oversampling = 10;
  /// Additional subspace (power) iterations after the first pass. Each one
  /// sharpens the captured spectrum at the cost of one more distributed
  /// pass over Y.
  int power_iterations = 1;
  /// Seed for the Gaussian test matrix Omega.
  uint64_t seed = 1;
  /// Stop once this fraction of the ideal accuracy is reached (> 1
  /// disables the target and runs every round).
  double target_accuracy_fraction = 2.0;
  /// Rows in the reconstruction-error sample.
  size_t error_sample_rows = 1000;
  /// Record an accuracy trace point per round.
  bool compute_accuracy_trace = true;
  /// When > 0, skip the converged-ideal-error fit and use this anchor
  /// (benchmarks share one anchor across solvers).
  double ideal_error_override = 0.0;
  /// EM iterations for the ideal-error anchor fit.
  int ideal_fit_iterations = 15;
};

/// Single-pass randomized range-finder PCA (Halko/Martinsson/Tropp via
/// Li-Kluger-Tygert's distributed formulation): the cluster computes the
/// sketch W = Yc' * (Yc * Z) in ONE consolidated job per round — each task
/// ships only a (D x k + k)-double partial, never the N x k projection —
/// and the driver finishes with the k x k Rayleigh-Ritz problem
/// T = Z' W. Contrast with ssvd (Mahout), which materializes N x k
/// intermediates and runs 3+ jobs per power round: rand_svd trades a
/// slightly weaker per-round accuracy step for a fraction of the shipped
/// bytes and job count, which is exactly where it lands on the Figure 4/5
/// crossover.
///
/// Determinism: Omega is drawn from Rng(seed) via DrawOmega, every round
/// is a pure function of (Z, Y), and checkpoints store the next round's Z
/// — resuming re-runs the remaining rounds bit-identically.
class RandSvdPca : public core::Solver {
 public:
  /// `engine` must outlive this object.
  RandSvdPca(dist::Engine* engine, const RandSvdOptions& options)
      : engine_(engine), options_(options) {}

  /// The seeded Gaussian test matrix Omega (D x k). Exposed so the
  /// determinism golden can pin the draws the solver consumes.
  static linalg::DenseMatrix DrawOmega(size_t dim, size_t sketch_dim,
                                       uint64_t seed);

  /// Effective sketch width for a D-column, N-row input.
  size_t EffectiveSketchDim(size_t rows, size_t cols) const;

  /// Single-shot fit.
  StatusOr<core::SolveResult> Solve(const dist::DistMatrix& y,
                                    const core::FitOptions& fit = {}) const;

  // Solver surface.
  std::string_view name() const override { return "rand_svd"; }
  Status Init(const core::FitOptions& options) override;
  Status Step(const dist::DistMatrix& batch) override;
  StatusOr<core::PcaModel> Snapshot() const override;
  StatusOr<core::SolveResult> Result() override;

  /// Restores a checkpoint written during a previous (possibly killed)
  /// solve. The checkpoint carries the orthonormal basis Z the *next*
  /// round would consume; the restored solver runs its configured number
  /// of rounds from that basis, so a resume configured with the remaining
  /// power iterations is bit-identical to the uninterrupted run.
  Status Restore(const core::PcaModel& model,
                 const core::SolverCheckpoint& checkpoint) override;

  const RandSvdOptions& options() const { return options_; }

 private:
  StatusOr<core::SolveResult> SolveBuffered() const;

  dist::Engine* engine_;
  RandSvdOptions options_;

  // Solver-surface state.
  core::FitOptions solve_options_;
  std::vector<dist::DistMatrix> batches_;
  // Restored mid-run basis (orthonormal, D x k) and the number of rounds
  // already completed when it was checkpointed.
  std::optional<linalg::DenseMatrix> restored_basis_;
  uint64_t restored_rounds_ = 0;
};

}  // namespace spca::sketch

#endif  // SPCA_SKETCH_RAND_SVD_H_
