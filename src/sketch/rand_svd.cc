#include "sketch/rand_svd.h"

#include <algorithm>
#include <memory>
#include <utility>

#include "common/rng.h"
#include "common/stopwatch.h"
#include "core/jobs.h"
#include "core/reconstruction_error.h"
#include "linalg/eigen_sym.h"
#include "linalg/ops.h"
#include "linalg/qr.h"

namespace spca::sketch {

using dist::CommStats;
using dist::DistMatrix;
using dist::EngineMode;
using dist::RowRange;
using dist::TaskContext;
using linalg::DenseMatrix;
using linalg::DenseVector;

namespace {

/// One task's sketch partial: W_p = sum_i Y_i' * t_i (D x k, touching only
/// the stored entries of each row) and the projection column sums needed
/// for the driver-side mean correction.
struct SketchPartial {
  DenseMatrix w;
  DenseVector t_sum;
};

/// Routes a partial's bytes per platform, matching core/jobs.cc: MapReduce
/// mapper output is intermediate data through the DFS; Spark accumulator
/// partials return straight to the driver.
void EmitPartial(const dist::Engine& engine, TaskContext* ctx,
                 uint64_t bytes) {
  if (engine.mode() == EngineMode::kMapReduce) {
    ctx->EmitIntermediate(bytes);
  } else {
    ctx->EmitResult(bytes);
  }
}

}  // namespace

DenseMatrix RandSvdPca::DrawOmega(size_t dim, size_t sketch_dim,
                                  uint64_t seed) {
  Rng rng(seed);
  return DenseMatrix::GaussianRandom(dim, sketch_dim, &rng);
}

size_t RandSvdPca::EffectiveSketchDim(size_t rows, size_t cols) const {
  size_t k = options_.sketch_dim > 0
                 ? options_.sketch_dim
                 : options_.num_components + options_.oversampling;
  return std::min(k, std::min(rows, cols));
}

StatusOr<core::SolveResult> RandSvdPca::Solve(
    const DistMatrix& y, const core::FitOptions& fit) const {
  const size_t d = options_.num_components;
  const size_t dim = y.cols();
  const size_t n = y.rows();
  if (d == 0) return Status::InvalidArgument("num_components must be positive");
  if (dim < d) {
    return Status::InvalidArgument(
        "num_components exceeds the input dimensionality");
  }
  if (n < 2) return Status::InvalidArgument("need at least 2 rows");
  const size_t k = EffectiveSketchDim(n, dim);
  if (k < d) {
    return Status::InvalidArgument("sketch_dim smaller than num_components");
  }

  obs::Registry* registry =
      fit.registry != nullptr ? fit.registry : engine_->registry();
  obs::Span fit_span(registry, "randsvd.fit", "algorithm");
  fit_span.SetAttribute("rows", static_cast<uint64_t>(n));
  fit_span.SetAttribute("cols", static_cast<uint64_t>(dim));
  fit_span.SetAttribute("components", static_cast<uint64_t>(d));
  fit_span.SetAttribute("sketch_dim", static_cast<uint64_t>(k));
  if (restored_rounds_ > 0) {
    fit_span.SetAttribute("resumed_after_rounds", restored_rounds_);
  }

  // Driver working set: Z, W, T and the merged partials — all D x k or
  // smaller, linear in D like sPCA's (never the N x k projection).
  constexpr double kDriverObjectOverhead = 10.0;
  const uint64_t driver_bytes =
      static_cast<uint64_t>(engine_->spec().driver_baseline_bytes) +
      static_cast<uint64_t>(kDriverObjectOverhead * 4.0 *
                            static_cast<double>(dim) * k * sizeof(double));
  SPCA_RETURN_IF_ERROR(
      engine_->AllocateDriverMemory("rand_svd driver state", driver_bytes));
  struct DriverMemoryGuard {
    dist::Engine* engine;
    uint64_t bytes;
    ~DriverMemoryGuard() { engine->ReleaseDriverMemory(bytes); }
  } driver_memory_guard{engine_, driver_bytes};

  const CommStats stats_before = engine_->stats();
  const double sim_before = engine_->SimulatedSeconds();
  Stopwatch wall;

  core::SolveResult result;
  result.first_job_index = engine_->traces().size();
  result.model.mean = core::MeanJob(engine_, y);
  const DenseVector& ym = result.model.mean;
  const double ss1 = core::FrobeniusNormJob(engine_, y, ym, true);
  if (!(ss1 > 0.0)) {
    return Status::FailedPrecondition(
        "input matrix is constant (zero variance)");
  }

  const bool needs_errors = options_.compute_accuracy_trace ||
                            options_.target_accuracy_fraction <= 1.0;
  DistMatrix sample;
  if (needs_errors) {
    const auto indices = core::SampleRowIndices(n, options_.error_sample_rows,
                                                core::kErrorSampleSeed);
    sample = y.SampleRows(indices, 1);
    result.ideal_error =
        options_.ideal_error_override > 0.0
            ? options_.ideal_error_override
            : core::ConvergedIdealError(engine_->spec(), y, d, sample,
                                        options_.ideal_fit_iterations,
                                        options_.seed);
  }

  // Round-1 basis: orth(Omega) on a cold start, the checkpointed Z on a
  // resume (already orthonormal — each round is pure in (Z, Y), so the
  // remaining rounds replay bit-identically).
  DenseMatrix z;
  if (restored_basis_.has_value()) {
    z = *restored_basis_;
  } else {
    z = linalg::OrthonormalizeColumns(DrawOmega(dim, k, options_.seed));
    engine_->CountDriverFlops(2ull * dim * k * k);
  }

  const int total_rounds = 1 + std::max(0, options_.power_iterations);
  for (int round = 1; round <= total_rounds; ++round) {
    obs::Span round_span(registry, "randsvd.power_round", "iteration");
    round_span.SetAttribute("round", static_cast<uint64_t>(round));
    registry->counter("randsvd.rounds")->Increment();

    // The consolidated sketch job: W = Yc' * (Yc * Z) in one pass. Each
    // task projects its rows (t_i = Y_i*Z - Ym'Z) and folds them straight
    // into a local D x k accumulator, so only (D*k + k) doubles per task
    // ever ship — never the N x k projection Mahout's ssvd materializes.
    engine_->Broadcast(z.ByteSize() + ym.size() * sizeof(double));
    DenseVector mean_proj(k);  // Ym' * Z, computed on the driver
    for (size_t r = 0; r < dim; ++r) {
      const double m = ym[r];
      if (m == 0.0) continue;
      for (size_t j = 0; j < k; ++j) mean_proj[j] += m * z(r, j);
    }
    engine_->CountDriverFlops(2ull * dim * k);

    const char* phase = round == 1 ? "projection" : "power_iteration";
    auto partials = engine_->RunMap<std::unique_ptr<SketchPartial>>(
        dist::JobDesc{"randsvd.sketchJob", phase}, y,
        [&](const RowRange& range, TaskContext* ctx) {
          auto partial = std::make_unique<SketchPartial>();
          partial->w = DenseMatrix(dim, k);
          partial->t_sum = DenseVector(k);
          DenseVector t(k);
          uint64_t flops = 0;
          for (size_t i = range.begin; i < range.end; ++i) {
            y.RowTimesMatrix(i, z, &t);
            t.Subtract(mean_proj);
            y.AddRowOuterProduct(i, t, &partial->w);
            partial->t_sum.Add(t);
            flops += 4ull * y.RowNnz(i) * k + 2ull * k;
          }
          ctx->CountFlops(flops);
          EmitPartial(*engine_, ctx,
                      (static_cast<uint64_t>(dim) * k + k) * sizeof(double));
          return partial;
        });

    DenseMatrix w(dim, k);
    DenseVector t_sum(k);
    for (const auto& partial : partials) {
      w.Add(partial->w);
      t_sum.Add(partial->t_sum);
    }
    // Mean correction: W -= Ym (x) t_sum (the -Ym' part of the left Yc').
    for (size_t r = 0; r < dim; ++r) {
      const double m = ym[r];
      if (m == 0.0) continue;
      for (size_t j = 0; j < k; ++j) w(r, j) -= m * t_sum[j];
    }
    engine_->CountDriverFlops(partials.size() * (dim * k + k) +
                              2ull * dim * k);

    // Rayleigh-Ritz on the k-dimensional subspace: T = Z'W = Z'Yc'YcZ is
    // symmetric up to roundoff; its top-d eigenpairs give the components
    // and the captured variance.
    DenseMatrix t = linalg::TransposeMultiply(z, w);
    for (size_t a = 0; a < k; ++a) {
      for (size_t b = a + 1; b < k; ++b) {
        const double s = 0.5 * (t(a, b) + t(b, a));
        t(a, b) = s;
        t(b, a) = s;
      }
    }
    auto eigen = linalg::SymmetricEigen(t);
    if (!eigen.ok()) return eigen.status();
    engine_->CountDriverFlops(2ull * dim * k * k + 9ull * k * k * k);

    DenseMatrix v_top(k, d);
    double captured = 0.0;
    for (size_t j = 0; j < d; ++j) {
      captured += std::max(0.0, eigen.value().values[j]);
      for (size_t a = 0; a < k; ++a) v_top(a, j) = eigen.value().vectors(a, j);
    }
    result.model.components = linalg::Multiply(z, v_top);
    result.model.noise_variance =
        dim > d ? std::max((ss1 - captured) / (static_cast<double>(n) *
                                               static_cast<double>(dim - d)),
                           1e-12)
                : 1e-12;
    engine_->CountDriverFlops(2ull * dim * k * d);
    result.iterations_run = round;

    // Next round's basis (also the checkpoint payload): orth(W).
    DenseMatrix z_next = linalg::OrthonormalizeColumns(w);
    engine_->CountDriverFlops(2ull * dim * k * k);

    if (fit.on_checkpoint) {
      core::SolverCheckpoint checkpoint;
      checkpoint.solver = "rand_svd";
      checkpoint.step = static_cast<uint64_t>(round);
      checkpoint.rows_seen = n;
      checkpoint.SetScalar("sketch_dim", static_cast<double>(k));
      checkpoint.SetMatrix("Z", z_next);
      SPCA_RETURN_IF_ERROR(fit.on_checkpoint(result.model, checkpoint));
    }

    if (needs_errors) {
      core::IterationTrace trace;
      trace.iteration = round;
      trace.error = core::SampledReconstructionError(
          sample, result.model.components, ym);
      trace.accuracy_percent =
          core::AccuracyPercent(trace.error, result.ideal_error);
      trace.simulated_seconds = engine_->SimulatedSeconds() - sim_before;
      trace.wall_seconds = wall.ElapsedSeconds();
      trace.ss = result.model.noise_variance;
      trace.jobs_completed = engine_->traces().size();
      result.trace.push_back(trace);
      round_span.SetAttribute("error", trace.error);
      round_span.SetAttribute("accuracy_percent", trace.accuracy_percent);
      registry->SetSpanAttribute(round_span.id(), "sim_seconds",
                                 trace.simulated_seconds);
      registry->SetSpanAttribute(round_span.id(), "wall_seconds",
                                 trace.wall_seconds);
      if (options_.target_accuracy_fraction <= 1.0 &&
          trace.accuracy_percent >=
              options_.target_accuracy_fraction * 100.0) {
        result.reached_target = true;
        break;
      }
    }

    z = std::move(z_next);
  }

  CommStats stats_after = engine_->stats();
  stats_after.wall_seconds = wall.ElapsedSeconds() + stats_before.wall_seconds;
  result.stats = dist::StatsDiff(stats_after, stats_before);
  fit_span.SetAttribute("iterations",
                        static_cast<uint64_t>(result.iterations_run));
  return result;
}

Status RandSvdPca::Init(const core::FitOptions& options) {
  solve_options_ = options;
  batches_.clear();
  restored_basis_.reset();
  restored_rounds_ = 0;
  return Status::Ok();
}

Status RandSvdPca::Step(const DistMatrix& batch) {
  if (batch.rows() == 0) {
    return Status::InvalidArgument("empty batch");
  }
  if (!batches_.empty() && batch.cols() != batches_.front().cols()) {
    return Status::InvalidArgument("batch dimensionality changed mid-solve");
  }
  batches_.push_back(batch);
  return Status::Ok();
}

StatusOr<core::SolveResult> RandSvdPca::SolveBuffered() const {
  if (batches_.empty()) {
    return Status::FailedPrecondition("no rows ingested; call Step first");
  }
  auto y = core::ConcatBatches(batches_);
  if (!y.ok()) return y.status();
  return Solve(y.value(), solve_options_);
}

StatusOr<core::PcaModel> RandSvdPca::Snapshot() const {
  auto result = SolveBuffered();
  if (!result.ok()) return result.status();
  return std::move(result.value().model);
}

StatusOr<core::SolveResult> RandSvdPca::Result() {
  auto result = SolveBuffered();
  batches_.clear();
  return result;
}

Status RandSvdPca::Restore(const core::PcaModel& model,
                           const core::SolverCheckpoint& checkpoint) {
  if (checkpoint.solver != name()) {
    return Status::InvalidArgument("checkpoint was written by solver '" +
                                   checkpoint.solver + "', not 'rand_svd'");
  }
  const DenseMatrix* z = checkpoint.FindMatrix("Z");
  if (z == nullptr) {
    return Status::InvalidArgument("rand_svd checkpoint is missing Z");
  }
  if (model.components.rows() != 0 && z->rows() != model.components.rows()) {
    return Status::InvalidArgument(
        "checkpoint basis does not match the model dimensionality");
  }
  if (z->cols() < options_.num_components) {
    return Status::InvalidArgument(
        "checkpoint basis is narrower than num_components");
  }
  restored_basis_ = *z;
  restored_rounds_ = checkpoint.step;
  return Status::Ok();
}

}  // namespace spca::sketch
