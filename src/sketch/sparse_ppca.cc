#include "sketch/sparse_ppca.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/rng.h"
#include "common/stopwatch.h"
#include "core/jobs.h"
#include "core/reconstruction_error.h"
#include "linalg/ops.h"
#include "linalg/solve.h"

namespace spca::sketch {

using dist::CommStats;
using dist::DistMatrix;
using linalg::DenseMatrix;
using linalg::DenseVector;

double SparsePpca::Shrink(double value, double threshold) {
  if (value > threshold) return value - threshold;
  if (value < -threshold) return value + threshold;
  return 0.0;
}

namespace {

/// Soft-thresholds C in place, protecting each column's largest-magnitude
/// entry (so no component ever collapses to the zero vector, which would
/// make C'C + ss*I ill-conditioned). Returns the number of non-zero
/// loadings remaining.
uint64_t ThresholdLoadings(DenseMatrix* c, double threshold) {
  const size_t dim = c->rows();
  const size_t d = c->cols();
  uint64_t nnz = 0;
  for (size_t j = 0; j < d; ++j) {
    size_t keep = 0;
    double best = -1.0;
    for (size_t i = 0; i < dim; ++i) {
      const double magnitude = std::fabs((*c)(i, j));
      if (magnitude > best) {
        best = magnitude;
        keep = i;
      }
    }
    for (size_t i = 0; i < dim; ++i) {
      if (i == keep) {
        if ((*c)(i, j) != 0.0) ++nnz;
        continue;
      }
      const double shrunk = SparsePpca::Shrink((*c)(i, j), threshold);
      (*c)(i, j) = shrunk;
      if (shrunk != 0.0) ++nnz;
    }
  }
  return nnz;
}

}  // namespace

StatusOr<core::SolveResult> SparsePpca::Solve(
    const DistMatrix& y, const core::FitOptions& fit) const {
  const size_t d = options_.num_components;
  const size_t dim = y.cols();
  const size_t n = y.rows();
  if (d == 0) return Status::InvalidArgument("num_components must be positive");
  if (dim < d) {
    return Status::InvalidArgument(
        "num_components exceeds the input dimensionality");
  }
  if (n < 2) return Status::InvalidArgument("need at least 2 rows");
  if (options_.l1_threshold < 0.0) {
    return Status::InvalidArgument("l1_threshold must be non-negative");
  }

  obs::Registry* registry =
      fit.registry != nullptr ? fit.registry : engine_->registry();
  obs::Span fit_span(registry, "sparse_ppca.fit", "algorithm");
  fit_span.SetAttribute("rows", static_cast<uint64_t>(n));
  fit_span.SetAttribute("cols", static_cast<uint64_t>(dim));
  fit_span.SetAttribute("components", static_cast<uint64_t>(d));
  fit_span.SetAttribute("l1_threshold", options_.l1_threshold);

  // Warm start (checkpoint resume) or the same cold start as core::Spca.
  DenseMatrix c;
  double ss;
  if (fit.components.has_value()) {
    c = *fit.components;
    ss = fit.noise_variance.value_or(1.0);
    if (c.rows() != dim || c.cols() != d) {
      return Status::InvalidArgument("initial components have the wrong shape");
    }
  } else {
    Rng rng(options_.seed);
    c = DenseMatrix::GaussianRandom(dim, d, &rng);
    ss = std::fabs(rng.NextGaussian(1.0, 1.0)) + 1e-3;
  }
  if (!(ss > 0.0)) {
    return Status::InvalidArgument("initial ss must be positive");
  }

  constexpr double kDriverObjectOverhead = 10.0;
  const uint64_t driver_bytes =
      static_cast<uint64_t>(engine_->spec().driver_baseline_bytes) +
      static_cast<uint64_t>(kDriverObjectOverhead * 4.0 *
                            static_cast<double>(dim) * d * sizeof(double));
  SPCA_RETURN_IF_ERROR(
      engine_->AllocateDriverMemory("sparse-PPCA driver state", driver_bytes));
  struct DriverMemoryGuard {
    dist::Engine* engine;
    uint64_t bytes;
    ~DriverMemoryGuard() { engine->ReleaseDriverMemory(bytes); }
  } driver_memory_guard{engine_, driver_bytes};

  const CommStats stats_before = engine_->stats();
  const double sim_before = engine_->SimulatedSeconds();
  Stopwatch wall;

  const core::JobToggles toggles;  // the optimized (paper) job variants

  core::SolveResult result;
  result.first_job_index = engine_->traces().size();
  result.model.components = std::move(c);
  result.model.noise_variance = ss;
  result.model.mean = core::MeanJob(engine_, y);
  const DenseVector& ym = result.model.mean;
  const double ss1 = core::FrobeniusNormJob(engine_, y, ym, true);
  if (!(ss1 > 0.0)) {
    return Status::FailedPrecondition(
        "input matrix is constant (zero variance)");
  }

  const bool needs_errors = options_.compute_accuracy_trace ||
                            options_.target_accuracy_fraction <= 1.0;
  DistMatrix sample;
  if (needs_errors) {
    const auto indices = core::SampleRowIndices(n, options_.error_sample_rows,
                                                core::kErrorSampleSeed);
    sample = y.SampleRows(indices, 1);
    result.ideal_error =
        options_.ideal_error_override > 0.0
            ? options_.ideal_error_override
            : core::ConvergedIdealError(engine_->spec(), y, d, sample,
                                        options_.ideal_fit_iterations,
                                        options_.seed);
  }

  DenseMatrix& cc = result.model.components;
  double& ss_ref = result.model.noise_variance;

  for (int iteration = 1; iteration <= options_.max_iterations; ++iteration) {
    obs::Span iter_span(registry, "sparse_ppca.em_iteration", "iteration");
    iter_span.SetAttribute("iteration", static_cast<uint64_t>(iteration));
    registry->counter("sketch.sparse_ppca.em_iterations")->Increment();

    // One EM sweep, identical to core::Spca's (Algorithm 4 lines 6-13) —
    // same distributed jobs, same driver algebra, same flop accounting.
    DenseMatrix m = linalg::TransposeMultiply(cc, cc);  // d x d
    m.AddScaledIdentity(ss_ref);
    auto m_inverse = linalg::Inverse(m);
    if (!m_inverse.ok()) return m_inverse.status();
    const DenseMatrix cm = linalg::Multiply(cc, m_inverse.value());  // D x d
    DenseVector xm(d);
    for (size_t r = 0; r < dim; ++r) {
      const double mr = ym[r];
      if (mr == 0.0) continue;
      for (size_t j = 0; j < d; ++j) xm[j] += mr * cm(r, j);
    }
    engine_->CountDriverFlops(2ull * dim * d * d + 2ull * d * d * d +
                              2ull * dim * d * d + 2ull * dim * d);

    core::YtXResult ytx_result =
        core::YtXJob(engine_, y, ym, xm, cm, nullptr, toggles);
    ytx_result.xtx.AddScaled(ss_ref, m_inverse.value());
    auto c_new = linalg::SolveRight(ytx_result.ytx, ytx_result.xtx);
    if (!c_new.ok()) return c_new.status();
    engine_->CountDriverFlops(2ull * d * d * d + 2ull * dim * d * d);

    // The sparse-PCA twist: lasso-style soft-threshold on the fresh C
    // *before* the variance update, so (C, ss) stay mutually consistent
    // and the checkpointed model is the complete resume state.
    const uint64_t nnz_loadings =
        ThresholdLoadings(&c_new.value(), options_.l1_threshold);
    engine_->CountDriverFlops(2ull * dim * d);

    const DenseMatrix ctc =
        linalg::TransposeMultiply(c_new.value(), c_new.value());
    double ss2 = 0.0;
    for (size_t a = 0; a < d; ++a) {
      for (size_t b = 0; b < d; ++b) ss2 += ytx_result.xtx(a, b) * ctc(b, a);
    }
    engine_->CountDriverFlops(2ull * dim * d * d + 2ull * d * d);

    const double ss3 =
        core::Ss3Job(engine_, y, ym, xm, cm, c_new.value(), nullptr, toggles);
    const double ss_new = (ss1 + ss2 - 2.0 * ss3) / static_cast<double>(n) /
                          static_cast<double>(dim);

    cc = std::move(c_new.value());
    ss_ref = std::max(ss_new, 1e-12);
    result.iterations_run = iteration;
    iter_span.SetAttribute("ss", ss_ref);
    iter_span.SetAttribute("nnz_loadings", nnz_loadings);
    registry->counter("sketch.sparse_ppca.zeroed_loadings")
        ->Add(static_cast<double>(static_cast<uint64_t>(dim) * d -
                                  nnz_loadings));
    registry->gauge("sketch.sparse_ppca.nnz_loadings")
        ->Set(static_cast<double>(nnz_loadings));

    if (fit.on_checkpoint) {
      core::SolverCheckpoint checkpoint;
      checkpoint.solver = "spca_sparse";
      checkpoint.step = static_cast<uint64_t>(iteration);
      checkpoint.rows_seen = n;
      SPCA_RETURN_IF_ERROR(fit.on_checkpoint(result.model, checkpoint));
    }

    if (needs_errors) {
      core::IterationTrace trace;
      trace.iteration = iteration;
      trace.error = core::SampledReconstructionError(sample, cc, ym);
      trace.accuracy_percent =
          core::AccuracyPercent(trace.error, result.ideal_error);
      trace.simulated_seconds = engine_->SimulatedSeconds() - sim_before;
      trace.wall_seconds = wall.ElapsedSeconds();
      trace.ss = ss_ref;
      trace.jobs_completed = engine_->traces().size();
      result.trace.push_back(trace);
      iter_span.SetAttribute("error", trace.error);
      iter_span.SetAttribute("accuracy_percent", trace.accuracy_percent);
      registry->SetSpanAttribute(iter_span.id(), "sim_seconds",
                                 trace.simulated_seconds);
      registry->SetSpanAttribute(iter_span.id(), "wall_seconds",
                                 trace.wall_seconds);
      if (options_.target_accuracy_fraction <= 1.0 &&
          trace.accuracy_percent >=
              options_.target_accuracy_fraction * 100.0) {
        result.reached_target = true;
        break;
      }
    }
  }

  CommStats stats_after = engine_->stats();
  stats_after.wall_seconds = wall.ElapsedSeconds() + stats_before.wall_seconds;
  result.stats = dist::StatsDiff(stats_after, stats_before);
  fit_span.SetAttribute("iterations",
                        static_cast<uint64_t>(result.iterations_run));
  return result;
}

Status SparsePpca::Init(const core::FitOptions& options) {
  solve_options_ = options;
  batches_.clear();
  return Status::Ok();
}

Status SparsePpca::Step(const DistMatrix& batch) {
  if (batch.rows() == 0) {
    return Status::InvalidArgument("empty batch");
  }
  if (!batches_.empty() && batch.cols() != batches_.front().cols()) {
    return Status::InvalidArgument("batch dimensionality changed mid-solve");
  }
  batches_.push_back(batch);
  return Status::Ok();
}

StatusOr<core::SolveResult> SparsePpca::SolveBuffered() const {
  if (batches_.empty()) {
    return Status::FailedPrecondition("no rows ingested; call Step first");
  }
  auto y = core::ConcatBatches(batches_);
  if (!y.ok()) return y.status();
  return Solve(y.value(), solve_options_);
}

StatusOr<core::PcaModel> SparsePpca::Snapshot() const {
  auto result = SolveBuffered();
  if (!result.ok()) return result.status();
  return std::move(result.value().model);
}

StatusOr<core::SolveResult> SparsePpca::Result() {
  auto result = SolveBuffered();
  batches_.clear();
  return result;
}

Status SparsePpca::Restore(const core::PcaModel& model,
                           const core::SolverCheckpoint& checkpoint) {
  if (checkpoint.solver != name()) {
    return Status::InvalidArgument("checkpoint was written by solver '" +
                                   checkpoint.solver + "', not 'spca_sparse'");
  }
  if (model.components.rows() == 0 || model.components.cols() == 0) {
    return Status::InvalidArgument("checkpoint model has no components");
  }
  if (!(model.noise_variance > 0.0)) {
    return Status::InvalidArgument("checkpoint noise variance must be > 0");
  }
  solve_options_.components = model.components;
  solve_options_.noise_variance = model.noise_variance;
  return Status::Ok();
}

}  // namespace spca::sketch
