#ifndef SPCA_SKETCH_SPARSIFIER_H_
#define SPCA_SKETCH_SPARSIFIER_H_

#include <cstdint>
#include <vector>

#include "dist/dist_matrix.h"
#include "obs/registry.h"

namespace spca::sketch {

/// Options for the entry-sampling preprocessor.
struct SparsifierOptions {
  /// Probability of keeping each stored entry, in (0, 1]. Kept entries are
  /// rescaled by 1/keep_probability so E[sparsified Y] = Y (the unbiased
  /// element-wise sampling estimator of Pourkamali-Anaraki & Becker).
  double keep_probability = 0.25;
  /// Seed for the keep-mask draws. The mask for row i depends only on
  /// (seed, i), never on partitioning or visit order.
  uint64_t seed = 0x5eed;
};

/// Seeded, deterministic entry sampler: keeps each stored entry of a dense
/// or sparse input with probability p and reweights survivors by 1/p. The
/// result is always sparse, so every downstream solver's per-row work and
/// shipped partial bytes shrink roughly by p — the preprocessor composes
/// with any core::Solver because it acts on the DistMatrix itself.
///
/// Determinism contract: the keep decisions for row i are the first
/// RowNnz(i) draws of an Rng seeded from (seed, i). Two Apply calls over
/// the same logical matrix — regardless of its partition count or storage
/// kind's iteration order — keep exactly the same entries, and the draws
/// are pinned by determinism_golden_test.
class Sparsifier {
 public:
  explicit Sparsifier(const SparsifierOptions& options) : options_(options) {}

  /// Returns the sparsified copy of `y` (same shape, same partition
  /// count, always sparse storage). When `registry` is non-null, records
  /// the sketch.sparsify.* counters: input/kept entry counts and
  /// input/output byte sizes (the shipped-byte savings every later job
  /// inherits). CHECK-fails on keep_probability outside (0, 1].
  dist::DistMatrix Apply(const dist::DistMatrix& y,
                         obs::Registry* registry = nullptr) const;

  /// The first `entries` keep decisions Apply draws for row `row` — the
  /// exact mask consumed when the row has `entries` stored values. Exposed
  /// for the determinism golden and tests.
  std::vector<bool> RowKeepMask(uint64_t row, size_t entries) const;

  const SparsifierOptions& options() const { return options_; }

 private:
  SparsifierOptions options_;
};

}  // namespace spca::sketch

#endif  // SPCA_SKETCH_SPARSIFIER_H_
