#include "stream/drift.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "linalg/eigen_sym.h"
#include "linalg/ops.h"
#include "linalg/qr.h"

namespace spca::stream {

using linalg::DenseMatrix;

double SubspaceAngleRadians(const DenseMatrix& a, const DenseMatrix& b) {
  SPCA_CHECK_EQ(a.rows(), b.rows());
  SPCA_CHECK_GT(a.cols(), 0u);
  SPCA_CHECK_GT(b.cols(), 0u);
  const DenseMatrix qa = linalg::OrthonormalizeColumns(a);
  const DenseMatrix qb = linalg::OrthonormalizeColumns(b);
  // The cosines of the principal angles are the singular values of
  // M = Qa' Qb; the k-th largest eigenvalue of M'M (k = min(ka, kb)) is the
  // squared cosine of the largest angle.
  const DenseMatrix m = linalg::TransposeMultiply(qa, qb);
  const DenseMatrix mtm = linalg::TransposeMultiply(m, m);
  auto eig = linalg::SymmetricEigen(mtm);
  SPCA_CHECK(eig.ok());
  const size_t k = std::min(qa.cols(), qb.cols());
  const double lambda = std::clamp(eig.value().values[k - 1], 0.0, 1.0);
  return std::acos(std::sqrt(lambda));
}

double SubspaceAngleDegrees(const DenseMatrix& a, const DenseMatrix& b) {
  return SubspaceAngleRadians(a, b) * 180.0 / 3.14159265358979323846;
}

}  // namespace spca::stream
