#ifndef SPCA_STREAM_STREAM_SOLVER_H_
#define SPCA_STREAM_STREAM_SOLVER_H_

#include <cstdint>
#include <functional>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "common/stopwatch.h"
#include "core/solver.h"
#include "dist/comm_stats.h"
#include "dist/dist_matrix.h"
#include "dist/engine.h"
#include "linalg/dense_matrix.h"
#include "obs/registry.h"

namespace spca::stream {

/// Options shared by the streaming solvers.
struct StreamSolverOptions {
  size_t num_components = 50;
  uint64_t seed = 1;
  /// EMA weight for the running sufficient statistics (mini-batch EM) and
  /// the running residual estimates (Oja). 0 selects the flat average
  /// rho_t = 1/t — the right choice for a stationary stream; a fixed
  /// rho in (0, 1] forgets exponentially and tracks drifting streams.
  double decay = 0.2;
  /// Oja learning-rate schedule eta_t = eta0 / (1 + t / tau). The default
  /// is sized so a random orthonormal init separates signal from noise
  /// directions within a handful of unit-variance mini-batches; halving it
  /// roughly doubles the steps to convergence.
  double eta0 = 2.0;
  double tau = 50.0;
  /// Lazy reorthonormalization period, in mini-batch steps, for the Oja
  /// solver: the basis is allowed to shear for this many gradient steps
  /// before one QR pass restores orthonormality ("lazy" per Lazy
  /// stochastic PCA). Snapshot() always returns an orthonormal basis
  /// regardless. Mini-batch EM ignores this — its M-step solve keeps C
  /// conditioned without explicit reorthogonalization.
  size_t reorth_every = 8;
};

/// Mini-batch stochastic EM for PPCA on an unbounded row stream.
///
/// State between batches is exactly the servable triple (mean, C, ss) plus
/// EMA-blended per-row sufficient statistics (E[x x'], E[y' x], E||yc||^2).
/// Each Step runs one EM iteration whose E-step statistics come from the
/// current batch (through the same distributed jobs — and hence the same
/// cost accounting and replayable traces — as the batch solver), blended
/// into the running statistics before the M-step. With decay = 0 and a
/// single Step over all rows this is one batch EM iteration.
class MiniBatchEmSolver : public core::Solver {
 public:
  /// `engine` must outlive this object.
  MiniBatchEmSolver(dist::Engine* engine, const StreamSolverOptions& options)
      : engine_(engine), options_(options) {}

  std::string_view name() const override { return "minibatch_em"; }
  Status Init(const core::FitOptions& options) override;
  Status Step(const dist::DistMatrix& batch) override;
  StatusOr<core::PcaModel> Snapshot() const override;
  StatusOr<core::SolveResult> Result() override;

  /// Full resume state: the EMA-blended sufficient statistics plus the
  /// exact mean accumulator. Restoring (Snapshot(), Checkpoint()) into a
  /// freshly Init()ed solver makes subsequent Steps bit-identical to the
  /// uninterrupted run.
  StatusOr<core::SolverCheckpoint> Checkpoint() const override;
  Status Restore(const core::PcaModel& model,
                 const core::SolverCheckpoint& checkpoint) override;

  size_t steps() const { return steps_; }
  uint64_t rows_seen() const { return rows_seen_; }
  double noise_variance() const { return ss_; }

 private:
  dist::Engine* engine_;
  StreamSolverOptions options_;

  obs::Registry* registry_ = nullptr;
  std::function<Status(const core::PcaModel&, const core::SolverCheckpoint&)>
      on_checkpoint_;
  size_t dim_ = 0;  // fixed by the first batch
  size_t steps_ = 0;
  uint64_t rows_seen_ = 0;
  linalg::DenseVector mean_sum_;  // running column sums (exact mean)
  linalg::DenseVector mean_;
  linalg::DenseMatrix c_;  // D x d
  double ss_ = 1.0;
  // EMA-blended per-row sufficient statistics.
  linalg::DenseMatrix s_xtx_;  // d x d
  linalg::DenseMatrix s_ytx_;  // D x d
  double s_ss1_ = 0.0;
  double s_ss3_ = 0.0;
  std::vector<core::IterationTrace> trace_;
  dist::CommStats stats_before_;
  double sim_before_ = 0.0;
  size_t first_job_index_ = 0;
  Stopwatch wall_;
};

/// Oja / streaming power iteration with lazy reorthonormalization.
///
/// Each Step takes one gradient step C += eta_t * Yc' (Yc C) / b on the
/// mini-batch (a consolidated distributed job; mean-propagated so sparse
/// rows stay sparse) and reorthonormalizes only every reorth_every steps.
/// The running mean is exact; ss is estimated from the EMA of the residual
/// energy per row, so Snapshot() yields a complete servable PPCA model.
class OjaSolver : public core::Solver {
 public:
  /// `engine` must outlive this object.
  OjaSolver(dist::Engine* engine, const StreamSolverOptions& options)
      : engine_(engine), options_(options) {}

  std::string_view name() const override { return "oja"; }
  Status Init(const core::FitOptions& options) override;
  Status Step(const dist::DistMatrix& batch) override;
  StatusOr<core::PcaModel> Snapshot() const override;
  StatusOr<core::SolveResult> Result() override;

  /// Resume state including the *raw* (possibly sheared) basis — the
  /// published model's orthonormalized components are not sufficient to
  /// continue the lazy-reorthonormalization schedule bit-identically.
  StatusOr<core::SolverCheckpoint> Checkpoint() const override;
  Status Restore(const core::PcaModel& model,
                 const core::SolverCheckpoint& checkpoint) override;

  size_t steps() const { return steps_; }
  uint64_t rows_seen() const { return rows_seen_; }

 private:
  dist::Engine* engine_;
  StreamSolverOptions options_;

  obs::Registry* registry_ = nullptr;
  std::function<Status(const core::PcaModel&, const core::SolverCheckpoint&)>
      on_checkpoint_;
  size_t dim_ = 0;
  size_t steps_ = 0;
  uint64_t rows_seen_ = 0;
  size_t steps_since_reorth_ = 0;
  linalg::DenseVector mean_sum_;
  linalg::DenseVector mean_;
  linalg::DenseMatrix c_;  // D x d, approximately orthonormal
  // EMA of per-row total and projected energy, for the ss estimate.
  double s_norm_ = 0.0;
  double s_proj_ = 0.0;
  std::vector<core::IterationTrace> trace_;
  dist::CommStats stats_before_;
  double sim_before_ = 0.0;
  size_t first_job_index_ = 0;
  Stopwatch wall_;
};

}  // namespace spca::stream

#endif  // SPCA_STREAM_STREAM_SOLVER_H_
