#ifndef SPCA_STREAM_PIPELINE_H_
#define SPCA_STREAM_PIPELINE_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/solver.h"
#include "dist/dist_matrix.h"
#include "linalg/dense_matrix.h"
#include "obs/registry.h"
#include "stream/publisher.h"

namespace spca::stream {

/// Options for StreamPipeline.
struct StreamPipelineOptions {
  /// Publish a snapshot after this many ingested batches (0 = only at the
  /// end of the run).
  size_t publish_every_batches = 8;
  /// Stop after this many batches even if the source has more (0 = drain
  /// the source).
  size_t max_batches = 0;
  /// Publish from a dedicated thread so swaps overlap ingestion (the
  /// train-while-serving deployment); snapshots are still taken on the
  /// ingest thread, so the solver itself stays single-threaded. When off,
  /// publishes run inline — fully deterministic.
  bool background_publisher = false;
  /// Retain each published snapshot in the summary (benchmarks compare
  /// them against a full-batch refit afterwards).
  bool keep_snapshots = false;
  /// Durably checkpoint the solver after this many ingested batches
  /// (0 = never). Each checkpoint overwrites checkpoint_path with the
  /// servable model (SPCM) plus the solver's resume sidecar (SPCS), so a
  /// killed run restarts from the latest batch boundary: Restore the pair
  /// into a fresh solver and Run again on the remaining stream —
  /// bit-identical to never having died. Requires a non-empty
  /// checkpoint_path and a solver that implements Checkpoint().
  size_t checkpoint_every_batches = 0;
  std::string checkpoint_path;
  /// Metrics for the stream.* pipeline counters/gauges. May be null.
  obs::Registry* metrics = nullptr;
};

/// One publish that the pipeline performed.
struct PublishRecord {
  uint64_t generation = 0;
  size_t after_batches = 0;
  uint64_t rows_ingested = 0;
  /// Wall seconds from snapshot to the registry serving it.
  double swap_latency_sec = 0.0;
  /// Largest principal angle (radians) between the published basis and the
  /// reference basis at publish time; negative when no reference was given.
  double angle_to_reference_rad = -1.0;
  bool ok = true;
  /// Set only with StreamPipelineOptions::keep_snapshots.
  std::optional<core::PcaModel> snapshot;
};

/// Summary of one pipeline run.
struct StreamRunSummary {
  uint64_t rows_ingested = 0;
  size_t batches = 0;
  size_t publishes = 0;
  size_t publish_failures = 0;
  /// Checkpoints written to StreamPipelineOptions::checkpoint_path.
  size_t checkpoints = 0;
  double wall_seconds = 0.0;
  std::vector<PublishRecord> publish_log;
};

/// Couples a row source, a streaming Solver, and a ModelPublisher into the
/// ingest -> re-fit -> hot-swap loop: Step each batch, and every
/// publish_every_batches snapshot the solver and publish into the live
/// registry while queries keep flowing.
class StreamPipeline {
 public:
  /// Returns the next batch, or nullopt when the stream ends.
  using BatchSource = std::function<std::optional<dist::DistMatrix>()>;
  /// Reference basis (D x k) the drift metric compares published snapshots
  /// against — the stream's current true basis in benchmarks, or a
  /// full-batch refit.
  using ReferenceFn = std::function<linalg::DenseMatrix()>;

  /// `solver` must already be Init'ed; both pointers must outlive Run.
  StreamPipeline(core::Solver* solver, ModelPublisher* publisher,
                 const StreamPipelineOptions& options)
      : solver_(solver), publisher_(publisher), options_(options) {}

  /// Runs the ingest loop to completion. Blocks until the source is
  /// drained (or max_batches reached) and every publish has landed.
  StatusOr<StreamRunSummary> Run(const BatchSource& next_batch,
                                 const ReferenceFn& reference = nullptr);

 private:
  core::Solver* solver_;
  ModelPublisher* publisher_;
  StreamPipelineOptions options_;
};

}  // namespace spca::stream

#endif  // SPCA_STREAM_PIPELINE_H_
