#include "stream/pipeline.h"

#include <condition_variable>
#include <mutex>
#include <thread>
#include <utility>

#include "common/stopwatch.h"
#include "serve/model_io.h"
#include "stream/drift.h"

namespace spca::stream {

namespace {

/// One snapshot handed from the ingest thread to the publisher thread.
struct PendingPublish {
  core::PcaModel model;
  size_t after_batches = 0;
  uint64_t rows_ingested = 0;
  double angle_to_reference_rad = -1.0;
  Stopwatch swap_watch;  // started at snapshot time
};

}  // namespace

StatusOr<StreamRunSummary> StreamPipeline::Run(const BatchSource& next_batch,
                                               const ReferenceFn& reference) {
  StreamRunSummary summary;
  Stopwatch run_wall;
  obs::Registry* metrics = options_.metrics;

  // Background publisher state: a one-slot mailbox of the latest snapshot.
  // If a new snapshot arrives while the previous one is still being
  // published, the older pending one is superseded (publish latest wins).
  std::mutex mutex;
  std::condition_variable cv;
  std::optional<PendingPublish> pending;
  bool done = false;
  std::vector<PublishRecord> log;
  size_t failures = 0;

  auto do_publish = [&](PendingPublish&& work) {
    PublishRecord record;
    record.after_batches = work.after_batches;
    record.rows_ingested = work.rows_ingested;
    record.angle_to_reference_rad = work.angle_to_reference_rad;
    auto generation = publisher_->Publish(work.model);
    record.ok = generation.ok();
    record.generation = generation.ok() ? generation.value() : 0;
    record.swap_latency_sec = work.swap_watch.ElapsedSeconds();
    if (options_.keep_snapshots) record.snapshot = std::move(work.model);
    if (metrics != nullptr && record.angle_to_reference_rad >= 0.0) {
      metrics->gauge("stream.subspace_angle_deg")
          ->Set(record.angle_to_reference_rad * 180.0 / 3.14159265358979323846);
    }
    if (!record.ok) failures += 1;
    std::lock_guard<std::mutex> lock(mutex);
    log.push_back(std::move(record));
  };

  std::thread publisher_thread;
  if (options_.background_publisher) {
    publisher_thread = std::thread([&] {
      std::unique_lock<std::mutex> lock(mutex);
      while (true) {
        cv.wait(lock, [&] { return pending.has_value() || done; });
        if (!pending.has_value()) {
          if (done) return;
          continue;
        }
        PendingPublish work = std::move(*pending);
        pending.reset();
        lock.unlock();
        do_publish(std::move(work));
        lock.lock();
      }
    });
  }

  auto snapshot_and_publish = [&]() -> Status {
    auto model = solver_->Snapshot();
    if (!model.ok()) return model.status();
    PendingPublish work;
    work.model = std::move(model).value();
    work.after_batches = summary.batches;
    work.rows_ingested = summary.rows_ingested;
    if (reference) {
      work.angle_to_reference_rad =
          SubspaceAngleRadians(work.model.components, reference());
    }
    work.swap_watch.Reset();
    if (options_.background_publisher) {
      std::lock_guard<std::mutex> lock(mutex);
      if (pending.has_value() && metrics != nullptr) {
        metrics->counter("stream.publish_superseded")->Increment();
      }
      pending = std::move(work);
      cv.notify_one();
    } else {
      do_publish(std::move(work));
    }
    return Status::Ok();
  };

  auto checkpoint = [&]() -> Status {
    if (options_.checkpoint_path.empty()) {
      return Status::InvalidArgument(
          "checkpoint_every_batches requires checkpoint_path");
    }
    auto model = solver_->Snapshot();
    if (!model.ok()) return model.status();
    auto state = solver_->Checkpoint();
    if (!state.ok()) return state.status();
    SPCA_RETURN_IF_ERROR(serve::SaveCheckpoint(model.value(), state.value(),
                                               options_.checkpoint_path));
    summary.checkpoints += 1;
    if (metrics != nullptr) {
      metrics->counter("stream.checkpoints")->Increment();
    }
    return Status::Ok();
  };

  Status failure = Status::Ok();
  while (options_.max_batches == 0 || summary.batches < options_.max_batches) {
    auto batch = next_batch();
    if (!batch.has_value()) break;
    Status stepped = solver_->Step(*batch);
    if (!stepped.ok()) {
      failure = stepped;
      break;
    }
    summary.batches += 1;
    summary.rows_ingested += batch->rows();
    if (metrics != nullptr) {
      metrics->counter("stream.pipeline_batches")->Increment();
    }
    if (options_.publish_every_batches > 0 &&
        summary.batches % options_.publish_every_batches == 0) {
      Status published = snapshot_and_publish();
      if (!published.ok()) {
        failure = published;
        break;
      }
    }
    if (options_.checkpoint_every_batches > 0 &&
        summary.batches % options_.checkpoint_every_batches == 0) {
      Status checkpointed = checkpoint();
      if (!checkpointed.ok()) {
        failure = checkpointed;
        break;
      }
    }
  }

  // Final snapshot so the served model reflects the whole run (skipped when
  // the loop already published at this exact batch count).
  if (failure.ok() && summary.batches > 0 &&
      (options_.publish_every_batches == 0 ||
       summary.batches % options_.publish_every_batches != 0)) {
    failure = snapshot_and_publish();
  }

  if (options_.background_publisher) {
    {
      std::lock_guard<std::mutex> lock(mutex);
      done = true;
    }
    cv.notify_one();
    publisher_thread.join();
  }
  if (!failure.ok()) return failure;

  summary.publish_failures = failures;
  {
    std::lock_guard<std::mutex> lock(mutex);
    summary.publish_log = std::move(log);
  }
  summary.publishes = summary.publish_log.size() - summary.publish_failures;
  summary.wall_seconds = run_wall.ElapsedSeconds();
  if (metrics != nullptr) {
    metrics->gauge("stream.last_run_rows")
        ->Set(static_cast<double>(summary.rows_ingested));
  }
  return summary;
}

}  // namespace spca::stream
