#ifndef SPCA_STREAM_PUBLISHER_H_
#define SPCA_STREAM_PUBLISHER_H_

#include <cstdint>
#include <functional>
#include <string>

#include "common/status.h"
#include "core/pca_model.h"
#include "obs/registry.h"
#include "serve/model_registry.h"

namespace spca::stream {

/// Options for ModelPublisher.
struct PublisherOptions {
  /// Registry name the snapshots are served under. Required.
  serve::ModelRegistry* registry = nullptr;
  std::string model_name = "stream";
  /// When non-empty, each publish writes the snapshot through the SPCM
  /// side-channel: SaveModel to "<spool_path>.tmp", atomic rename over
  /// spool_path, then registry->Load from the file — the durable
  /// train-to-serve handoff (a crashed ingestor leaves either the complete
  /// old spool or the complete new one, and a restarted server reloads
  /// whichever is there; LoadModel's checksum rejects torn writes). When
  /// empty, the snapshot is installed in memory.
  std::string spool_path;
  /// Metrics for stream.publishes / stream.publish_failures counters and
  /// the stream.publish_sec swap-latency histogram. May be null.
  obs::Registry* metrics = nullptr;
  /// Test seam: replaces serve::SaveModel for the spool write (chaos tests
  /// inject torn/failed writes here).
  std::function<Status(const core::PcaModel&, const std::string&)> save_fn;
  /// Test seam: runs after the spool write but before the registry swap
  /// (chaos tests simulate an ingestor crash between the two by returning
  /// an error). A non-OK status aborts the publish; the registry keeps
  /// serving the previous generation.
  std::function<Status()> before_install_hook;
};

/// Publishes solver snapshots into a live ModelRegistry. Publish is
/// all-or-nothing: on any failure (spool write, checksum validation,
/// injected fault) the registry still serves the previous complete model —
/// queries never observe a torn snapshot.
class ModelPublisher {
 public:
  explicit ModelPublisher(PublisherOptions options);

  /// Publishes one snapshot; returns the registry generation now serving
  /// (1 for the first publish). Thread-safe with respect to registry
  /// readers; concurrent Publish calls must be externally serialized.
  StatusOr<uint64_t> Publish(const core::PcaModel& model);

  uint64_t publishes() const { return publishes_; }
  uint64_t failures() const { return failures_; }
  const std::string& model_name() const { return options_.model_name; }

 private:
  PublisherOptions options_;
  uint64_t publishes_ = 0;
  uint64_t failures_ = 0;
};

}  // namespace spca::stream

#endif  // SPCA_STREAM_PUBLISHER_H_
