#include "stream/stream_solver.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/rng.h"
#include "core/jobs.h"
#include "linalg/kernels.h"
#include "linalg/ops.h"
#include "linalg/qr.h"
#include "linalg/solve.h"

namespace spca::stream {

using dist::DistMatrix;
using dist::Engine;
using dist::EngineMode;
using dist::RowRange;
using dist::TaskContext;
using linalg::DenseMatrix;
using linalg::DenseVector;

namespace {

// Same platform routing as the batch jobs (core/jobs.cc): MapReduce mapper
// output is intermediate data; Spark accumulator partials go to the driver.
void EmitPartial(const Engine& engine, TaskContext* ctx, uint64_t bytes) {
  if (engine.mode() == EngineMode::kMapReduce) {
    ctx->EmitIntermediate(bytes);
  } else {
    ctx->EmitResult(bytes);
  }
}

/// Distributed per-batch column-sum job. Unlike core::MeanJob it returns
/// raw sums, so the driver can fold them into the running stream mean
/// exactly (mean = sum of all batch sums / rows seen).
DenseVector StreamSumJob(Engine* engine, const DistMatrix& batch) {
  const size_t dim = batch.cols();
  auto partials = engine->RunMap<DenseVector>(
      dist::JobDesc{"stream.sumJob", "stream"}, batch,
      [&](const RowRange& range, TaskContext* ctx) {
        DenseVector sums(dim);
        uint64_t entries = 0;
        for (size_t i = range.begin; i < range.end; ++i) {
          batch.ForEachEntry(i, [&](size_t k, double v) { sums[k] += v; });
          entries += batch.RowNnz(i);
        }
        ctx->CountFlops(entries);
        EmitPartial(*engine, ctx, dim * sizeof(double));
        return sums;
      });
  DenseVector total(dim);
  for (const auto& partial : partials) total.Add(partial);
  engine->CountDriverFlops(partials.size() * dim);
  return total;
}

double BlendRho(size_t steps_done, double decay) {
  if (steps_done == 0) return 1.0;
  if (decay > 0.0) return decay;
  return 1.0 / static_cast<double>(steps_done + 1);
}

// Checkpoint plumbing: vectors travel as n x 1 matrices in the
// solver-agnostic SolverCheckpoint.
DenseMatrix VectorAsMatrix(const DenseVector& v) {
  DenseMatrix m(v.size(), 1);
  for (size_t i = 0; i < v.size(); ++i) m(i, 0) = v[i];
  return m;
}

DenseVector MatrixAsVector(const DenseMatrix& m) {
  DenseVector v(m.rows() * m.cols());
  for (size_t i = 0; i < v.size(); ++i) v[i] = m.data()[i];
  return v;
}

Status MissingCheckpointField(const char* solver, const char* key) {
  return Status::InvalidArgument(std::string(solver) +
                                 " checkpoint is missing field '" + key + "'");
}

}  // namespace

Status MiniBatchEmSolver::Init(const core::FitOptions& options) {
  registry_ = options.registry != nullptr ? options.registry
                                          : engine_->registry();
  on_checkpoint_ = options.on_checkpoint;
  dim_ = 0;
  steps_ = 0;
  rows_seen_ = 0;
  mean_sum_ = DenseVector();
  mean_ = DenseVector();
  s_xtx_ = DenseMatrix();
  s_ytx_ = DenseMatrix();
  s_ss1_ = 0.0;
  s_ss3_ = 0.0;
  trace_.clear();
  if (options.components.has_value()) {
    c_ = *options.components;
    if (c_.cols() != options_.num_components) {
      return Status::InvalidArgument("warm-start components have the wrong "
                                     "number of columns");
    }
    ss_ = options.noise_variance.value_or(1.0);
  } else {
    c_ = DenseMatrix();
    ss_ = options.noise_variance.value_or(0.0);  // 0 = draw at first Step
  }
  if (options.noise_variance.has_value() && !(*options.noise_variance > 0.0)) {
    return Status::InvalidArgument("initial ss must be positive");
  }
  stats_before_ = engine_->stats();
  sim_before_ = engine_->SimulatedSeconds();
  first_job_index_ = engine_->traces().size();
  wall_.Reset();
  return Status::Ok();
}

Status MiniBatchEmSolver::Step(const DistMatrix& batch) {
  const size_t d = options_.num_components;
  if (batch.rows() == 0) return Status::InvalidArgument("empty batch");
  if (dim_ == 0) {
    dim_ = batch.cols();
    if (dim_ < d) {
      return Status::InvalidArgument(
          "num_components exceeds the input dimensionality");
    }
    if (c_.rows() == 0) {
      // Cold start: the same draw order as the batch solver's cold start.
      Rng rng(options_.seed);
      c_ = DenseMatrix::GaussianRandom(dim_, d, &rng);
      if (!(ss_ > 0.0)) ss_ = std::fabs(rng.NextGaussian(1.0, 1.0)) + 1e-3;
    } else if (c_.rows() != dim_) {
      return Status::InvalidArgument("warm-start components have the wrong "
                                     "number of rows");
    }
    mean_sum_ = DenseVector(dim_);
    mean_ = DenseVector(dim_);
    s_xtx_ = DenseMatrix(d, d);
    s_ytx_ = DenseMatrix(dim_, d);
  }
  if (batch.cols() != dim_) {
    return Status::InvalidArgument("batch dimensionality changed mid-stream");
  }
  const double b = static_cast<double>(batch.rows());

  obs::Span step_span(registry_, "stream.step", "stream");
  step_span.SetAttribute("solver", std::string(name()));
  step_span.SetAttribute("step", static_cast<uint64_t>(steps_ + 1));
  step_span.SetAttribute("batch_rows", static_cast<uint64_t>(batch.rows()));
  Stopwatch step_wall;

  // Running exact mean from per-batch column sums.
  mean_sum_.Add(StreamSumJob(engine_, batch));
  rows_seen_ += batch.rows();
  mean_ = mean_sum_;
  mean_.Scale(1.0 / static_cast<double>(rows_seen_));
  engine_->CountDriverFlops(2ull * dim_);

  const double ss1_b =
      core::FrobeniusNormJob(engine_, batch, mean_, /*efficient=*/true);

  // E-step driver algebra — identical to the batch EM iteration.
  DenseMatrix m = linalg::TransposeMultiply(c_, c_);
  m.AddScaledIdentity(ss_);
  auto m_inverse = linalg::Inverse(m);
  if (!m_inverse.ok()) return m_inverse.status();
  const DenseMatrix cm = linalg::Multiply(c_, m_inverse.value());
  DenseVector xm(d);
  for (size_t k = 0; k < dim_; ++k) {
    const double mk = mean_[k];
    if (mk == 0.0) continue;
    for (size_t j = 0; j < d; ++j) xm[j] += mk * cm(k, j);
  }
  engine_->CountDriverFlops(2ull * dim_ * d * d + 2ull * d * d * d +
                            2ull * dim_ * d * d + 2ull * dim_ * d);

  core::JobToggles toggles;  // all optimizations on for stream batches
  core::YtXResult ytx =
      core::YtXJob(engine_, batch, mean_, xm, cm, nullptr, toggles);

  // Blend per-row-averaged sufficient statistics (stochastic EM).
  const double rho = BlendRho(steps_, options_.decay);
  s_xtx_.Scale(1.0 - rho);
  s_xtx_.AddScaled(rho / b, ytx.xtx);
  s_ytx_.Scale(1.0 - rho);
  s_ytx_.AddScaled(rho / b, ytx.ytx);
  s_ss1_ = (1.0 - rho) * s_ss1_ + rho * ss1_b / b;
  engine_->CountDriverFlops(2ull * (dim_ * d + d * d));

  // M-step on the blended statistics, materialized at the current batch's
  // scale so rho = 1 reproduces one batch EM iteration exactly.
  DenseMatrix xtx_hat(d, d);
  xtx_hat.AddScaled(b, s_xtx_);
  xtx_hat.AddScaled(ss_, m_inverse.value());
  DenseMatrix ytx_hat(dim_, d);
  ytx_hat.AddScaled(b, s_ytx_);
  auto c_new = linalg::SolveRight(ytx_hat, xtx_hat);
  if (!c_new.ok()) return c_new.status();
  engine_->CountDriverFlops(2ull * d * d * d + 2ull * dim_ * d * d);

  const DenseMatrix ctc =
      linalg::TransposeMultiply(c_new.value(), c_new.value());
  double ss2 = 0.0;
  for (size_t a = 0; a < d; ++a) {
    for (size_t q = 0; q < d; ++q) ss2 += xtx_hat(a, q) * ctc(q, a);
  }
  engine_->CountDriverFlops(2ull * dim_ * d * d + 2ull * d * d);

  const double ss3_b = core::Ss3Job(engine_, batch, mean_, xm, cm,
                                    c_new.value(), nullptr, toggles);
  s_ss3_ = (1.0 - rho) * s_ss3_ + rho * ss3_b / b;

  c_ = std::move(c_new.value());
  ss_ = std::max((b * s_ss1_ + ss2 - 2.0 * b * s_ss3_) / (b * dim_), 1e-12);
  steps_ += 1;

  core::IterationTrace point;
  point.iteration = static_cast<int>(steps_);
  point.ss = ss_;
  point.simulated_seconds = engine_->SimulatedSeconds() - sim_before_;
  point.wall_seconds = wall_.ElapsedSeconds();
  point.jobs_completed = engine_->traces().size();
  trace_.push_back(point);

  registry_->counter("stream.steps")->Increment();
  registry_->counter("stream.rows_ingested")
      ->Add(static_cast<double>(batch.rows()));
  registry_->histogram("stream.step_sec")->Observe(step_wall.ElapsedSeconds());
  step_span.SetAttribute("ss", ss_);
  registry_->SetSpanAttribute(step_span.id(), "sim_seconds",
                              point.simulated_seconds);

  if (on_checkpoint_) {
    auto model = Snapshot();
    if (!model.ok()) return model.status();
    auto checkpoint = Checkpoint();
    if (!checkpoint.ok()) return checkpoint.status();
    SPCA_RETURN_IF_ERROR(on_checkpoint_(model.value(), checkpoint.value()));
  }
  return Status::Ok();
}

StatusOr<core::SolverCheckpoint> MiniBatchEmSolver::Checkpoint() const {
  if (steps_ == 0) {
    return Status::FailedPrecondition("no rows ingested; nothing to "
                                      "checkpoint");
  }
  core::SolverCheckpoint checkpoint;
  checkpoint.solver = std::string(name());
  checkpoint.step = steps_;
  checkpoint.rows_seen = rows_seen_;
  checkpoint.SetScalar("dim", static_cast<double>(dim_));
  checkpoint.SetScalar("ss", ss_);
  checkpoint.SetScalar("s_ss1", s_ss1_);
  checkpoint.SetScalar("s_ss3", s_ss3_);
  checkpoint.SetMatrix("mean_sum", VectorAsMatrix(mean_sum_));
  checkpoint.SetMatrix("s_xtx", s_xtx_);
  checkpoint.SetMatrix("s_ytx", s_ytx_);
  return checkpoint;
}

Status MiniBatchEmSolver::Restore(const core::PcaModel& model,
                                  const core::SolverCheckpoint& checkpoint) {
  if (checkpoint.solver != name()) {
    return Status::InvalidArgument("checkpoint was written by solver '" +
                                   checkpoint.solver + "', not '" +
                                   std::string(name()) + "'");
  }
  const double* dim = checkpoint.FindScalar("dim");
  const double* ss = checkpoint.FindScalar("ss");
  const double* s_ss1 = checkpoint.FindScalar("s_ss1");
  const double* s_ss3 = checkpoint.FindScalar("s_ss3");
  const DenseMatrix* mean_sum = checkpoint.FindMatrix("mean_sum");
  const DenseMatrix* s_xtx = checkpoint.FindMatrix("s_xtx");
  const DenseMatrix* s_ytx = checkpoint.FindMatrix("s_ytx");
  if (dim == nullptr) return MissingCheckpointField("minibatch_em", "dim");
  if (ss == nullptr) return MissingCheckpointField("minibatch_em", "ss");
  if (s_ss1 == nullptr) return MissingCheckpointField("minibatch_em", "s_ss1");
  if (s_ss3 == nullptr) return MissingCheckpointField("minibatch_em", "s_ss3");
  if (mean_sum == nullptr) {
    return MissingCheckpointField("minibatch_em", "mean_sum");
  }
  if (s_xtx == nullptr) return MissingCheckpointField("minibatch_em", "s_xtx");
  if (s_ytx == nullptr) return MissingCheckpointField("minibatch_em", "s_ytx");
  const size_t d = options_.num_components;
  const size_t restored_dim = static_cast<size_t>(*dim);
  if (model.components.rows() != restored_dim ||
      model.components.cols() != d || mean_sum->rows() != restored_dim ||
      s_xtx->rows() != d || s_xtx->cols() != d ||
      s_ytx->rows() != restored_dim || s_ytx->cols() != d) {
    return Status::InvalidArgument(
        "minibatch_em checkpoint shapes do not match the solver options");
  }
  if (!(*ss > 0.0)) {
    return Status::InvalidArgument("checkpoint noise variance must be > 0");
  }
  dim_ = restored_dim;
  steps_ = checkpoint.step;
  rows_seen_ = checkpoint.rows_seen;
  mean_sum_ = MatrixAsVector(*mean_sum);
  mean_ = mean_sum_;
  if (rows_seen_ > 0) mean_.Scale(1.0 / static_cast<double>(rows_seen_));
  c_ = model.components;
  ss_ = *ss;
  s_xtx_ = *s_xtx;
  s_ytx_ = *s_ytx;
  s_ss1_ = *s_ss1;
  s_ss3_ = *s_ss3;
  return Status::Ok();
}

StatusOr<core::PcaModel> MiniBatchEmSolver::Snapshot() const {
  if (steps_ == 0) {
    return Status::FailedPrecondition("no rows ingested; call Step first");
  }
  core::PcaModel model;
  model.components = c_;
  model.mean = mean_;
  model.noise_variance = ss_;
  return model;
}

StatusOr<core::SolveResult> MiniBatchEmSolver::Result() {
  auto model = Snapshot();
  if (!model.ok()) return model.status();
  core::SolveResult result;
  result.model = std::move(model).value();
  result.trace = trace_;
  result.iterations_run = static_cast<int>(steps_);
  result.first_job_index = first_job_index_;
  dist::CommStats stats_after = engine_->stats();
  stats_after.wall_seconds =
      wall_.ElapsedSeconds() + stats_before_.wall_seconds;
  result.stats = dist::StatsDiff(stats_after, stats_before_);
  return result;
}

namespace {

/// Per-partition partial of the consolidated Oja job.
struct OjaPartial {
  DenseMatrix a;     // D x d: sum_i Y_i' (x) p_i
  DenseVector s;     // d: sum_i p_i
  double proj_sq = 0.0;
  double norm_sq = 0.0;
  size_t touched_rows = 0;
};

}  // namespace

Status OjaSolver::Init(const core::FitOptions& options) {
  registry_ = options.registry != nullptr ? options.registry
                                          : engine_->registry();
  on_checkpoint_ = options.on_checkpoint;
  dim_ = 0;
  steps_ = 0;
  rows_seen_ = 0;
  steps_since_reorth_ = 0;
  mean_sum_ = DenseVector();
  mean_ = DenseVector();
  s_norm_ = 0.0;
  s_proj_ = 0.0;
  trace_.clear();
  if (options.components.has_value()) {
    c_ = linalg::OrthonormalizeColumns(*options.components);
    if (c_.cols() != options_.num_components) {
      return Status::InvalidArgument("warm-start components have the wrong "
                                     "number of columns");
    }
  } else {
    c_ = DenseMatrix();
  }
  stats_before_ = engine_->stats();
  sim_before_ = engine_->SimulatedSeconds();
  first_job_index_ = engine_->traces().size();
  wall_.Reset();
  return Status::Ok();
}

Status OjaSolver::Step(const DistMatrix& batch) {
  const size_t d = options_.num_components;
  if (batch.rows() == 0) return Status::InvalidArgument("empty batch");
  if (dim_ == 0) {
    dim_ = batch.cols();
    if (dim_ < d) {
      return Status::InvalidArgument(
          "num_components exceeds the input dimensionality");
    }
    if (c_.rows() == 0) {
      Rng rng(options_.seed);
      c_ = linalg::OrthonormalizeColumns(
          DenseMatrix::GaussianRandom(dim_, d, &rng));
    } else if (c_.rows() != dim_) {
      return Status::InvalidArgument("warm-start components have the wrong "
                                     "number of rows");
    }
    mean_sum_ = DenseVector(dim_);
    mean_ = DenseVector(dim_);
  }
  if (batch.cols() != dim_) {
    return Status::InvalidArgument("batch dimensionality changed mid-stream");
  }
  const double b = static_cast<double>(batch.rows());

  obs::Span step_span(registry_, "stream.step", "stream");
  step_span.SetAttribute("solver", std::string(name()));
  step_span.SetAttribute("step", static_cast<uint64_t>(steps_ + 1));
  step_span.SetAttribute("batch_rows", static_cast<uint64_t>(batch.rows()));
  Stopwatch step_wall;

  mean_sum_.Add(StreamSumJob(engine_, batch));
  rows_seen_ += batch.rows();
  mean_ = mean_sum_;
  mean_.Scale(1.0 / static_cast<double>(rows_seen_));
  engine_->CountDriverFlops(2ull * dim_);

  // Driver precomputes C' * mean (mean propagation: p_i = Y_i C - C'm) and
  // ||m||^2 (for the per-row centered energy).
  DenseVector cm0(d);
  for (size_t k = 0; k < dim_; ++k) {
    const double mk = mean_[k];
    if (mk == 0.0) continue;
    linalg::kernels::AxpyRow(mk, c_.RowPtr(k), d, cm0.data());
  }
  const double msq = mean_.SquaredNorm();
  engine_->CountDriverFlops(2ull * dim_ * d + 2ull * dim_);
  engine_->Broadcast(c_.ByteSize() + (mean_.size() + cm0.size()) *
                                         sizeof(double));

  // Consolidated Oja job: one pass accumulating the gradient partial
  // A_p = sum Y_i' (x) p_i, the projection sum s_p = sum p_i, and the
  // per-row energies for the ss estimate.
  auto partials = engine_->RunMap<std::unique_ptr<OjaPartial>>(
      dist::JobDesc{"stream.ojaJob", "stream"}, batch,
      [&](const RowRange& range, TaskContext* ctx) {
        auto partial = std::make_unique<OjaPartial>();
        partial->a = DenseMatrix(dim_, d);
        partial->s = DenseVector(d);
        std::vector<uint8_t> touched(dim_, 0);
        DenseVector p(d);
        uint64_t flops = 0;
        for (size_t i = range.begin; i < range.end; ++i) {
          // p_i = Yc_i * C = Y_i * C - C'm (mean propagation keeps the
          // sparse row sparse).
          batch.RowTimesMatrix(i, c_, &p);
          p.Subtract(cm0);
          flops += 2ull * batch.RowNnz(i) * d + d;
          // Gradient partial: Yc_i' (x) p_i, split as the sparse outer
          // product here plus the -m (x) sum(p) term on the driver.
          batch.ForEachEntry(i, [&](size_t k, double v) {
            touched[k] = 1;
            linalg::kernels::AxpyRow(v, p.data(), d, partial->a.RowPtr(k));
          });
          partial->s.Add(p);
          flops += 2ull * batch.RowNnz(i) * d + d;
          // Residual bookkeeping: ||Yc_i||^2 and ||p_i||^2.
          partial->norm_sq += batch.RowSquaredNorm(i) -
                              2.0 * batch.RowDot(i, mean_) + msq;
          partial->proj_sq += p.SquaredNorm();
          flops += 4ull * batch.RowNnz(i) + 2ull * d + 3;
        }
        for (uint8_t t : touched) partial->touched_rows += t;
        ctx->CountFlops(flops);
        uint64_t bytes;
        if (engine_->mode() == EngineMode::kSpark && batch.is_sparse()) {
          bytes = partial->touched_rows * d *
                  (sizeof(double) + sizeof(uint32_t));
        } else {
          bytes = dim_ * d * sizeof(double);
        }
        bytes += d * sizeof(double) + 2 * sizeof(double);
        EmitPartial(*engine_, ctx, bytes);
        return partial;
      });

  DenseMatrix grad(dim_, d);
  DenseVector s_total(d);
  double norm_sq = 0.0;
  double proj_sq = 0.0;
  for (const auto& partial : partials) {
    grad.Add(partial->a);
    s_total.Add(partial->s);
    norm_sq += partial->norm_sq;
    proj_sq += partial->proj_sq;
  }
  // The -m (x) sum(p) half of the centered outer product.
  for (size_t k = 0; k < dim_; ++k) {
    const double mk = mean_[k];
    if (mk == 0.0) continue;
    linalg::kernels::AxpyRow(-mk, s_total.data(), d, grad.RowPtr(k));
  }
  // Gradient ascent on the batch-averaged Rayleigh objective.
  const double eta =
      options_.eta0 / (1.0 + static_cast<double>(steps_) / options_.tau);
  c_.AddScaled(eta / b, grad);
  engine_->CountDriverFlops(partials.size() * (dim_ * d + d) +
                            2ull * dim_ * d + 2ull * dim_ * d);

  // Lazy reorthonormalization: let the basis shear for reorth_every steps,
  // then restore orthonormality with one QR pass.
  steps_since_reorth_ += 1;
  if (options_.reorth_every > 0 &&
      steps_since_reorth_ >= options_.reorth_every) {
    c_ = linalg::OrthonormalizeColumns(c_);
    steps_since_reorth_ = 0;
    engine_->CountDriverFlops(2ull * dim_ * d * d);
    registry_->counter("stream.reorthonormalizations")->Increment();
  }

  const double rho = BlendRho(steps_, options_.decay);
  s_norm_ = (1.0 - rho) * s_norm_ + rho * norm_sq / b;
  s_proj_ = (1.0 - rho) * s_proj_ + rho * proj_sq / b;
  steps_ += 1;

  core::IterationTrace point;
  point.iteration = static_cast<int>(steps_);
  point.ss = std::max((s_norm_ - s_proj_) /
                          static_cast<double>(std::max<size_t>(dim_ - d, 1)),
                      1e-12);
  point.simulated_seconds = engine_->SimulatedSeconds() - sim_before_;
  point.wall_seconds = wall_.ElapsedSeconds();
  point.jobs_completed = engine_->traces().size();
  trace_.push_back(point);

  registry_->counter("stream.steps")->Increment();
  registry_->counter("stream.rows_ingested")
      ->Add(static_cast<double>(batch.rows()));
  registry_->histogram("stream.step_sec")->Observe(step_wall.ElapsedSeconds());
  step_span.SetAttribute("ss", point.ss);
  registry_->SetSpanAttribute(step_span.id(), "sim_seconds",
                              point.simulated_seconds);

  if (on_checkpoint_) {
    auto model = Snapshot();
    if (!model.ok()) return model.status();
    auto checkpoint = Checkpoint();
    if (!checkpoint.ok()) return checkpoint.status();
    SPCA_RETURN_IF_ERROR(on_checkpoint_(model.value(), checkpoint.value()));
  }
  return Status::Ok();
}

StatusOr<core::SolverCheckpoint> OjaSolver::Checkpoint() const {
  if (steps_ == 0) {
    return Status::FailedPrecondition("no rows ingested; nothing to "
                                      "checkpoint");
  }
  core::SolverCheckpoint checkpoint;
  checkpoint.solver = std::string(name());
  checkpoint.step = steps_;
  checkpoint.rows_seen = rows_seen_;
  checkpoint.SetScalar("dim", static_cast<double>(dim_));
  checkpoint.SetScalar("s_norm", s_norm_);
  checkpoint.SetScalar("s_proj", s_proj_);
  checkpoint.SetScalar("steps_since_reorth",
                       static_cast<double>(steps_since_reorth_));
  checkpoint.SetMatrix("mean_sum", VectorAsMatrix(mean_sum_));
  // The raw basis, not the published orthonormalized one: restoring it
  // keeps the lazy-reorthonormalization schedule bit-identical.
  checkpoint.SetMatrix("c_raw", c_);
  return checkpoint;
}

Status OjaSolver::Restore(const core::PcaModel& model,
                          const core::SolverCheckpoint& checkpoint) {
  if (checkpoint.solver != name()) {
    return Status::InvalidArgument("checkpoint was written by solver '" +
                                   checkpoint.solver + "', not '" +
                                   std::string(name()) + "'");
  }
  const double* dim = checkpoint.FindScalar("dim");
  const double* s_norm = checkpoint.FindScalar("s_norm");
  const double* s_proj = checkpoint.FindScalar("s_proj");
  const double* since_reorth = checkpoint.FindScalar("steps_since_reorth");
  const DenseMatrix* mean_sum = checkpoint.FindMatrix("mean_sum");
  const DenseMatrix* c_raw = checkpoint.FindMatrix("c_raw");
  if (dim == nullptr) return MissingCheckpointField("oja", "dim");
  if (s_norm == nullptr) return MissingCheckpointField("oja", "s_norm");
  if (s_proj == nullptr) return MissingCheckpointField("oja", "s_proj");
  if (since_reorth == nullptr) {
    return MissingCheckpointField("oja", "steps_since_reorth");
  }
  if (mean_sum == nullptr) return MissingCheckpointField("oja", "mean_sum");
  if (c_raw == nullptr) return MissingCheckpointField("oja", "c_raw");
  const size_t restored_dim = static_cast<size_t>(*dim);
  if (c_raw->rows() != restored_dim ||
      c_raw->cols() != options_.num_components ||
      mean_sum->rows() != restored_dim || model.components.rows() !=
                                              restored_dim) {
    return Status::InvalidArgument(
        "oja checkpoint shapes do not match the solver options");
  }
  dim_ = restored_dim;
  steps_ = checkpoint.step;
  rows_seen_ = checkpoint.rows_seen;
  steps_since_reorth_ = static_cast<size_t>(*since_reorth);
  mean_sum_ = MatrixAsVector(*mean_sum);
  mean_ = mean_sum_;
  if (rows_seen_ > 0) mean_.Scale(1.0 / static_cast<double>(rows_seen_));
  c_ = *c_raw;
  s_norm_ = *s_norm;
  s_proj_ = *s_proj;
  return Status::Ok();
}

StatusOr<core::PcaModel> OjaSolver::Snapshot() const {
  if (steps_ == 0) {
    return Status::FailedPrecondition("no rows ingested; call Step first");
  }
  core::PcaModel model;
  // Published bases are always orthonormal even mid-way through a lazy
  // reorthonormalization window.
  model.components = linalg::OrthonormalizeColumns(c_);
  model.mean = mean_;
  model.noise_variance =
      std::max((s_norm_ - s_proj_) /
                   static_cast<double>(
                       std::max<size_t>(dim_ - options_.num_components, 1)),
               1e-12);
  return model;
}

StatusOr<core::SolveResult> OjaSolver::Result() {
  auto model = Snapshot();
  if (!model.ok()) return model.status();
  core::SolveResult result;
  result.model = std::move(model).value();
  result.trace = trace_;
  result.iterations_run = static_cast<int>(steps_);
  result.first_job_index = first_job_index_;
  dist::CommStats stats_after = engine_->stats();
  stats_after.wall_seconds =
      wall_.ElapsedSeconds() + stats_before_.wall_seconds;
  result.stats = dist::StatsDiff(stats_after, stats_before_);
  return result;
}

}  // namespace spca::stream
