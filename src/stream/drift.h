#ifndef SPCA_STREAM_DRIFT_H_
#define SPCA_STREAM_DRIFT_H_

#include "linalg/dense_matrix.h"

namespace spca::stream {

/// Largest principal angle (radians, in [0, pi/2]) between the column
/// spaces of `a` and `b` (each D x k; the two k's may differ). Columns are
/// orthonormalized internally, so any basis — a solver's raw C, a published
/// model's components — can be passed directly. 0 means one subspace
/// contains the other; pi/2 means some direction of the smaller subspace is
/// orthogonal to the other. This is the freshness/drift metric: the angle
/// between a served snapshot and the current truth (or a full-batch refit).
double SubspaceAngleRadians(const linalg::DenseMatrix& a,
                            const linalg::DenseMatrix& b);

/// Same, in degrees (what the stream metrics and BENCH_stream report).
double SubspaceAngleDegrees(const linalg::DenseMatrix& a,
                            const linalg::DenseMatrix& b);

}  // namespace spca::stream

#endif  // SPCA_STREAM_DRIFT_H_
