#include "stream/publisher.h"

#include <cstdio>
#include <utility>

#include "common/check.h"
#include "common/stopwatch.h"
#include "serve/model_io.h"

namespace spca::stream {

ModelPublisher::ModelPublisher(PublisherOptions options)
    : options_(std::move(options)) {
  SPCA_CHECK(options_.registry != nullptr);
  if (!options_.save_fn) {
    options_.save_fn = [](const core::PcaModel& model,
                          const std::string& path) {
      return serve::SaveModel(model, path);
    };
  }
}

StatusOr<uint64_t> ModelPublisher::Publish(const core::PcaModel& model) {
  obs::Span span(options_.metrics, "stream.publish", "stream");
  span.SetAttribute("model", options_.model_name);
  Stopwatch swap_watch;
  auto fail = [&](Status status) -> StatusOr<uint64_t> {
    failures_ += 1;
    if (options_.metrics != nullptr) {
      options_.metrics->counter("stream.publish_failures")->Increment();
    }
    return status;
  };

  if (!options_.spool_path.empty()) {
    // Durable handoff: write the complete file beside the spool, then
    // atomically rename it into place. A fault inside save_fn (or a crash
    // before the rename) leaves the old spool untouched.
    const std::string tmp_path = options_.spool_path + ".tmp";
    Status saved = options_.save_fn(model, tmp_path);
    if (!saved.ok()) return fail(saved);
    if (std::rename(tmp_path.c_str(), options_.spool_path.c_str()) != 0) {
      return fail(Status::Internal("rename failed for " + tmp_path));
    }
    if (options_.before_install_hook) {
      Status hook = options_.before_install_hook();
      if (!hook.ok()) return fail(hook);
    }
    // Load re-reads and checksum-validates the spool, then swaps
    // atomically; a torn spool is rejected here and the previous
    // generation keeps serving.
    Status loaded =
        options_.registry->Load(options_.model_name, options_.spool_path);
    if (!loaded.ok()) return fail(loaded);
  } else {
    if (options_.before_install_hook) {
      Status hook = options_.before_install_hook();
      if (!hook.ok()) return fail(hook);
    }
    Status installed = options_.registry->Install(options_.model_name, model);
    if (!installed.ok()) return fail(installed);
  }

  publishes_ += 1;
  auto info = options_.registry->GetInfo(options_.model_name);
  const uint64_t generation = info.has_value() ? info->generation : 0;
  if (options_.metrics != nullptr) {
    options_.metrics->counter("stream.publishes")->Increment();
    options_.metrics->histogram("stream.publish_sec")
        ->Observe(swap_watch.ElapsedSeconds());
    options_.metrics->gauge("stream.model_generation")
        ->Set(static_cast<double>(generation));
  }
  span.SetAttribute("generation", generation);
  return generation;
}

}  // namespace spca::stream
