#ifndef SPCA_LINALG_SOLVE_H_
#define SPCA_LINALG_SOLVE_H_

#include "common/status.h"
#include "linalg/dense_matrix.h"

namespace spca::linalg {

/// Cholesky factorization of a symmetric positive-definite matrix:
/// A = L * L' with L lower triangular. Fails if A is not SPD (within
/// numerical tolerance). Used for the d x d matrices M and XtX in PPCA.
StatusOr<DenseMatrix> CholeskyFactor(const DenseMatrix& a);

/// Solves A * X = B for SPD A using Cholesky. B may have multiple columns.
StatusOr<DenseMatrix> SolveSpd(const DenseMatrix& a, const DenseMatrix& b);

/// Solves A * X = B using LU with partial pivoting (general square A).
StatusOr<DenseMatrix> SolveLu(const DenseMatrix& a, const DenseMatrix& b);

/// Inverse of a square matrix via LU. Fails on (numerically) singular input.
StatusOr<DenseMatrix> Inverse(const DenseMatrix& a);

/// Solves X * A = B, i.e. X = B * A^{-1} — the paper's `B / A` notation
/// (line "C = YtX / XtX" in Algorithm 1). A is square (d x d); B is (n x d).
StatusOr<DenseMatrix> SolveRight(const DenseMatrix& b, const DenseMatrix& a);

}  // namespace spca::linalg

#endif  // SPCA_LINALG_SOLVE_H_
