#include "linalg/eigen_sym.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

namespace spca::linalg {

StatusOr<SymmetricEigenResult> SymmetricEigen(const DenseMatrix& a,
                                              int max_sweeps) {
  // Jacobi is unbeatably robust but does several O(n^3) sweeps; the
  // tridiagonal path wins clearly beyond small sizes.
  constexpr size_t kJacobiCutoff = 48;
  if (a.rows() > kJacobiCutoff) return SymmetricEigenTridiagonal(a);
  return SymmetricEigenJacobi(a, max_sweeps);
}

StatusOr<SymmetricEigenResult> SymmetricEigenJacobi(const DenseMatrix& a,
                                                    int max_sweeps) {
  if (a.rows() != a.cols()) {
    return Status::InvalidArgument("SymmetricEigen requires a square matrix");
  }
  const size_t n = a.rows();
  DenseMatrix m = a;
  DenseMatrix v = DenseMatrix::Identity(n);

  // Cyclic Jacobi sweeps: zero each off-diagonal pair (p, q) with a Givens
  // rotation until the off-diagonal mass is negligible.
  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    double off = 0.0;
    for (size_t p = 0; p < n; ++p) {
      for (size_t q = p + 1; q < n; ++q) off += m(p, q) * m(p, q);
    }
    if (off < 1e-24 * std::max(1.0, m.FrobeniusNorm2())) break;

    for (size_t p = 0; p < n; ++p) {
      for (size_t q = p + 1; q < n; ++q) {
        const double apq = m(p, q);
        if (std::fabs(apq) < 1e-300) continue;
        const double app = m(p, p);
        const double aqq = m(q, q);
        const double tau = (aqq - app) / (2.0 * apq);
        // tan of the rotation angle, smaller root for stability.
        double t;
        if (tau >= 0.0) {
          t = 1.0 / (tau + std::sqrt(1.0 + tau * tau));
        } else {
          t = -1.0 / (-tau + std::sqrt(1.0 + tau * tau));
        }
        const double c = 1.0 / std::sqrt(1.0 + t * t);
        const double s = t * c;

        // Update rows/cols p and q of m (symmetric update).
        for (size_t k = 0; k < n; ++k) {
          const double mkp = m(k, p);
          const double mkq = m(k, q);
          m(k, p) = c * mkp - s * mkq;
          m(k, q) = s * mkp + c * mkq;
        }
        for (size_t k = 0; k < n; ++k) {
          const double mpk = m(p, k);
          const double mqk = m(q, k);
          m(p, k) = c * mpk - s * mqk;
          m(q, k) = s * mpk + c * mqk;
        }
        // Accumulate eigenvectors.
        for (size_t k = 0; k < n; ++k) {
          const double vkp = v(k, p);
          const double vkq = v(k, q);
          v(k, p) = c * vkp - s * vkq;
          v(k, q) = s * vkp + c * vkq;
        }
      }
    }
  }

  // Sort eigenpairs by descending eigenvalue.
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&m](size_t i, size_t j) { return m(i, i) > m(j, j); });

  SymmetricEigenResult result;
  result.values = DenseVector(n);
  result.vectors = DenseMatrix(n, n);
  for (size_t j = 0; j < n; ++j) {
    result.values[j] = m(order[j], order[j]);
    for (size_t i = 0; i < n; ++i) result.vectors(i, j) = v(i, order[j]);
  }
  return result;
}

StatusOr<SymmetricEigenResult> SymmetricEigenTridiagonal(
    const DenseMatrix& a) {
  if (a.rows() != a.cols()) {
    return Status::InvalidArgument("SymmetricEigen requires a square matrix");
  }
  const size_t n = a.rows();
  if (n == 0) {
    return SymmetricEigenResult{DenseVector(0), DenseMatrix(0, 0)};
  }

  // --- Householder tridiagonalization (tred2). `z` accumulates the
  // orthogonal similarity transform; `diag`/`sub` hold the tridiagonal
  // bands at the end.
  DenseMatrix z = a;
  std::vector<double> diag(n, 0.0);
  std::vector<double> sub(n, 0.0);

  for (size_t i = n - 1; i >= 1; --i) {
    const size_t l = i - 1;
    double h = 0.0;
    double scale = 0.0;
    if (i > 1) {
      for (size_t k = 0; k <= l; ++k) scale += std::fabs(z(i, k));
      if (scale == 0.0) {
        sub[i] = z(i, l);
      } else {
        for (size_t k = 0; k <= l; ++k) {
          z(i, k) /= scale;
          h += z(i, k) * z(i, k);
        }
        double f = z(i, l);
        double g = (f >= 0.0) ? -std::sqrt(h) : std::sqrt(h);
        sub[i] = scale * g;
        h -= f * g;
        z(i, l) = f - g;
        f = 0.0;
        for (size_t j = 0; j <= l; ++j) {
          z(j, i) = z(i, j) / h;
          g = 0.0;
          for (size_t k = 0; k <= j; ++k) g += z(j, k) * z(i, k);
          for (size_t k = j + 1; k <= l; ++k) g += z(k, j) * z(i, k);
          sub[j] = g / h;
          f += sub[j] * z(i, j);
        }
        const double hh = f / (h + h);
        for (size_t j = 0; j <= l; ++j) {
          f = z(i, j);
          sub[j] = g = sub[j] - hh * f;
          for (size_t k = 0; k <= j; ++k) {
            z(j, k) -= f * sub[k] + g * z(i, k);
          }
        }
      }
    } else {
      sub[i] = z(i, l);
    }
    diag[i] = h;
  }
  diag[0] = 0.0;
  sub[0] = 0.0;
  // Accumulate the transformation.
  for (size_t i = 0; i < n; ++i) {
    const size_t l = i;  // columns [0, i)
    if (diag[i] != 0.0) {
      for (size_t j = 0; j < l; ++j) {
        double g = 0.0;
        for (size_t k = 0; k < l; ++k) g += z(i, k) * z(k, j);
        for (size_t k = 0; k < l; ++k) z(k, j) -= g * z(k, i);
      }
    }
    diag[i] = z(i, i);
    z(i, i) = 1.0;
    for (size_t j = 0; j < l; ++j) {
      z(j, i) = 0.0;
      z(i, j) = 0.0;
    }
  }

  // --- Implicit-shift QL iteration on the tridiagonal (tql2).
  for (size_t i = 1; i < n; ++i) sub[i - 1] = sub[i];
  sub[n - 1] = 0.0;
  for (size_t l = 0; l < n; ++l) {
    int iterations = 0;
    for (;;) {
      size_t m = l;
      for (; m + 1 < n; ++m) {
        const double dd = std::fabs(diag[m]) + std::fabs(diag[m + 1]);
        if (std::fabs(sub[m]) <= 1e-15 * dd) break;
      }
      if (m == l) break;
      if (++iterations > 50) {
        return Status::Internal("tql2 failed to converge");
      }
      double g = (diag[l + 1] - diag[l]) / (2.0 * sub[l]);
      double r = std::hypot(g, 1.0);
      g = diag[m] - diag[l] +
          sub[l] / (g + (g >= 0.0 ? std::fabs(r) : -std::fabs(r)));
      double s = 1.0;
      double c = 1.0;
      double p = 0.0;
      bool underflow_restart = false;
      for (size_t i = m; i-- > l;) {
        double f = s * sub[i];
        const double b = c * sub[i];
        r = std::hypot(f, g);
        sub[i + 1] = r;
        if (r == 0.0) {
          // Recover from underflow: deflate and restart this eigenvalue.
          diag[i + 1] -= p;
          sub[m] = 0.0;
          underflow_restart = true;
          break;
        }
        s = f / r;
        c = g / r;
        g = diag[i + 1] - p;
        r = (diag[i] - g) * s + 2.0 * c * b;
        p = s * r;
        diag[i + 1] = g + p;
        g = c * r - b;
        for (size_t k = 0; k < n; ++k) {
          f = z(k, i + 1);
          z(k, i + 1) = s * z(k, i) + c * f;
          z(k, i) = c * z(k, i) - s * f;
        }
      }
      if (underflow_restart) continue;
      diag[l] -= p;
      sub[l] = g;
      sub[m] = 0.0;
    }
  }

  // Sort eigenpairs by descending eigenvalue.
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&diag](size_t i, size_t j) { return diag[i] > diag[j]; });

  SymmetricEigenResult result;
  result.values = DenseVector(n);
  result.vectors = DenseMatrix(n, n);
  for (size_t j = 0; j < n; ++j) {
    result.values[j] = diag[order[j]];
    for (size_t i = 0; i < n; ++i) {
      result.vectors(i, j) = z(i, order[j]);
    }
  }
  return result;
}

}  // namespace spca::linalg
