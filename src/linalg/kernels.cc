#include "linalg/kernels.h"

// Runtime ISA dispatch for the micro-kernels. The per-ISA variants live
// in their own translation units (kernels_scalar.cc, kernels_avx2.cc,
// kernels_neon.cc) compiled with the matching target flags; this TU owns
// the one-time resolution of a function-pointer table and the thin public
// forwarding shims. See kernel_dispatch.h for the resolution rules
// (SPCA_KERNEL_ISA env override, then best host-supported ISA).

#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace spca::linalg::kernels {
namespace {

struct KernelTable {
  Isa isa;
  void (*axpy_row)(double, const double*, size_t, double*);
  void (*add_row)(const double*, size_t, double*);
  double (*dot_row)(const double*, const double*, size_t, double);
  void (*rank1_update)(const double*, size_t, const double*, size_t, double*,
                       size_t);
  void (*sym_rank1_update)(const double*, size_t, double*, size_t);
  void (*sparse_row_gemv)(const SparseEntry*, size_t, const double*, size_t,
                          size_t, double*);
  void (*row_gemm)(const double*, size_t, const double*, size_t, size_t,
                   double*);
};

constexpr KernelTable kScalarTable = {
    Isa::kScalar,       scalar::AxpyRow,       scalar::AddRow,
    scalar::DotRow,     scalar::Rank1Update,   scalar::SymRank1Update,
    scalar::SparseRowGemv, scalar::RowGemm,
};

#if defined(SPCA_KERNELS_HAVE_AVX2)
constexpr KernelTable kAvx2Table = {
    Isa::kAvx2,       avx2::AxpyRow,       avx2::AddRow,
    avx2::DotRow,     avx2::Rank1Update,   avx2::SymRank1Update,
    avx2::SparseRowGemv, avx2::RowGemm,
};
#endif

#if defined(SPCA_KERNELS_HAVE_NEON)
constexpr KernelTable kNeonTable = {
    Isa::kNeon,       neon::AxpyRow,       neon::AddRow,
    neon::DotRow,     neon::Rank1Update,   neon::SymRank1Update,
    neon::SparseRowGemv, neon::RowGemm,
};
#endif

const KernelTable* TableFor(Isa isa) {
  switch (isa) {
    case Isa::kScalar:
      return &kScalarTable;
#if defined(SPCA_KERNELS_HAVE_AVX2)
    case Isa::kAvx2:
      return &kAvx2Table;
#endif
#if defined(SPCA_KERNELS_HAVE_NEON)
    case Isa::kNeon:
      return &kNeonTable;
#endif
    default:
      return nullptr;
  }
}

Isa BestSupportedIsa() {
#if defined(SPCA_KERNELS_HAVE_AVX2)
  // FMA is checked separately from AVX2: the avx2 TU uses vfmadd
  // throughout, and a few early AVX2 parts lack FMA.
  if (__builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma")) {
    return Isa::kAvx2;
  }
#endif
#if defined(SPCA_KERNELS_HAVE_NEON)
  return Isa::kNeon;  // baseline on aarch64
#endif
  return Isa::kScalar;
}

const KernelTable* Resolve() {
  Isa choice = BestSupportedIsa();
  if (const char* env = std::getenv("SPCA_KERNEL_ISA");
      env != nullptr && env[0] != '\0') {
    Isa requested = choice;
    bool known = true;
    if (std::strcmp(env, "scalar") == 0) {
      requested = Isa::kScalar;
    } else if (std::strcmp(env, "avx2") == 0) {
      requested = Isa::kAvx2;
    } else if (std::strcmp(env, "neon") == 0) {
      requested = Isa::kNeon;
    } else {
      known = false;
      std::fprintf(stderr,
                   "spca: unknown SPCA_KERNEL_ISA='%s' (want scalar|avx2|"
                   "neon); dispatching %s\n",
                   env, IsaName(choice));
    }
    if (known) {
      if (IsaAvailable(requested)) {
        choice = requested;
      } else {
        // Never dispatch an ISA the host cannot execute; fall back to
        // scalar (not "best") so a forced run is at least deterministic.
        choice = Isa::kScalar;
        std::fprintf(stderr,
                     "spca: SPCA_KERNEL_ISA=%s not available on this "
                     "host/build; dispatching scalar\n",
                     env);
      }
    }
  }
  return TableFor(choice);
}

const KernelTable& Table() {
  static const KernelTable* table = Resolve();  // once, thread-safe
  return *table;
}

}  // namespace

Isa DispatchedIsa() { return Table().isa; }

const char* IsaName(Isa isa) {
  switch (isa) {
    case Isa::kScalar:
      return "scalar";
    case Isa::kAvx2:
      return "avx2";
    case Isa::kNeon:
      return "neon";
  }
  return "unknown";
}

const char* DispatchedIsaName() { return IsaName(DispatchedIsa()); }

bool IsaAvailable(Isa isa) {
  if (isa == Isa::kScalar) return true;
#if defined(SPCA_KERNELS_HAVE_AVX2)
  if (isa == Isa::kAvx2) {
    return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
  }
#endif
#if defined(SPCA_KERNELS_HAVE_NEON)
  if (isa == Isa::kNeon) return true;
#endif
  return false;
}

void AxpyRow(double v, const double* b, size_t n, double* out) {
  Table().axpy_row(v, b, n, out);
}

void AddRow(const double* b, size_t n, double* out) {
  Table().add_row(b, n, out);
}

double DotRow(const double* a, const double* b, size_t n, double init) {
  return Table().dot_row(a, b, n, init);
}

void Rank1Update(const double* a, size_t rows, const double* b, size_t cols,
                 double* out, size_t out_stride) {
  Table().rank1_update(a, rows, b, cols, out, out_stride);
}

void SymRank1Update(const double* x, size_t d, double* out, size_t stride) {
  Table().sym_rank1_update(x, d, out, stride);
}

void SymMirrorLower(double* out, size_t d, size_t stride) {
  // Pure copies — one implementation serves every ISA bit-identically.
  for (size_t a = 1; a < d; ++a) {
    double* row = out + a * stride;
    for (size_t b = 0; b < a; ++b) row[b] = out[b * stride + a];
  }
}

void SparseRowGemv(const SparseEntry* entries, size_t nnz, const double* b,
                   size_t b_stride, size_t d, double* out) {
  Table().sparse_row_gemv(entries, nnz, b, b_stride, d, out);
}

void RowGemm(const double* a_row, size_t k, const double* b, size_t b_stride,
             size_t n, double* c_row) {
  Table().row_gemm(a_row, k, b, b_stride, n, c_row);
}

}  // namespace spca::linalg::kernels
