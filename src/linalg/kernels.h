#ifndef SPCA_LINALG_KERNELS_H_
#define SPCA_LINALG_KERNELS_H_

#include <cstddef>

#include "linalg/kernel_dispatch.h"
#include "linalg/sparse_matrix.h"

namespace spca::linalg::kernels {

// Cache-friendly micro-kernels for the per-row operations that dominate the
// EM inner loops (Section 3.3's in-memory multiplication and the XtX / YtX
// accumulations). All kernels operate on contiguous double* rows obtained
// via DenseMatrix::RowPtr() and dispatch at runtime to the widest ISA the
// host supports (scalar / AVX2+FMA / NEON; see kernel_dispatch.h, and the
// SPCA_KERNEL_ISA env override).
//
// Numerics come in two tiers:
//
//  - Exact tier (scalar dispatch, and AddRow on every ISA): per output
//    element the floating-point operations execute in exactly the order
//    of the original scalar loops, so everything downstream is
//    bit-identical to the pre-kernel-layer implementation
//    (tests/golden/fit_bits.golden, compared bit-for-bit).
//  - Tolerance tier (AVX2/NEON dispatch): fused multiply-adds round once
//    instead of twice and reductions run multiple accumulators, so
//    results agree with the scalar twins to ~1e-12 relative (enforced
//    per kernel by kernels_test's SIMD-vs-scalar property suites, and
//    end-to-end by the tolerance-tier fit golden comparison).
//
// Within one process the dispatched ISA never changes, so run-vs-run
// bit-identity properties (replay == live, batched == row-at-a-time,
// checkpoint/resume) hold on every ISA.
//
// Buffer contract (SparseRowGemv / RowGemm only): the matrix argument
// `b` must have at least 32 READABLE bytes past its last element — the
// SIMD tail vector of the final column stripe over-reads (never writes)
// up to 3 doubles beyond a logical row end and discards the surplus
// lanes with a masked store. AlignedDoubleBuffer (every DenseMatrix /
// DenseVector) provides this via zeroed allocator tail padding; callers
// handing in raw arrays must provide the slack themselves. See
// common/aligned.h and DESIGN.md par.8.

/// out[j] += v * b[j] for j in [0, n). The axpy at the heart of every
/// row-times-matrix product and outer-product accumulation.
void AxpyRow(double v, const double* b, size_t n, double* out);

/// out[j] += b[j] for j in [0, n) (the v == 1 axpy without the multiply).
/// Exact tier on every ISA: vector adds per element, no reassociation.
void AddRow(const double* b, size_t n, double* out);

/// Returns init + sum_j a[j] * b[j]. Scalar dispatch accumulates strictly
/// left to right (a single dependency chain — pass the running sum as
/// `init` to splice the product terms into an existing chain
/// bit-identically); SIMD dispatch reduces with parallel accumulators
/// (tolerance tier).
double DotRow(const double* a, const double* b, size_t n, double init = 0.0);

/// out(i, j) += a[i] * b[j] over the full rows x cols rectangle, where out
/// is row-major with the given stride. Rows with a[i] == 0 are skipped
/// (matching the scalar loops this replaces).
void Rank1Update(const double* a, size_t rows, const double* b, size_t cols,
                 double* out, size_t out_stride);

/// out += x * x' for a symmetric d x d accumulator (the XtX update),
/// touching the upper triangle (including the diagonal) ONLY — half the
/// multiply-adds of the full rectangle. Callers accumulate any number of
/// rows this way and then mirror once per partition with SymMirrorLower.
/// Since IEEE multiplication is exactly commutative (x[a]*x[b] ==
/// x[b]*x[a] bitwise), upper-then-mirror matches the full-rectangle
/// update it replaces (exactly on the scalar path, within the tolerance
/// tier under SIMD).
void SymRank1Update(const double* x, size_t d, double* out, size_t stride);

/// Copies the upper triangle of a d x d row-major matrix into its lower
/// triangle (the finishing step after a run of SymRank1Update calls).
/// Pure copies — bit-identical on every ISA.
void SymMirrorLower(double* out, size_t d, size_t stride);

/// out[j] += sum_k entries[k].value * b(entries[k].index, j) for j in
/// [0, d): one CSR row times a dense (D x d) matrix with row stride
/// b_stride. Columns are processed in register-sized stripes, iterating
/// the entries innermost, so the accumulators stay in registers instead
/// of round-tripping through out[] once per entry; the SIMD paths also
/// software-prefetch the gathered b rows (the CSR indices defeat the
/// hardware prefetcher).
void SparseRowGemv(const SparseEntry* entries, size_t nnz, const double* b,
                   size_t b_stride, size_t d, double* out);

/// c_row[j] += sum_k a_row[k] * b(k, j): one output row of C = A * B with
/// b row-major of stride b_stride. The scalar path skips zero a_row[k]
/// (matching the original loops); the SIMD paths hold register-resident
/// column stripes of c across the entire k sweep (b is streamed through
/// sequentially exactly once per stripe), with a 1-3 column remainder
/// riding in the final stripe's over-reading tail vector.
void RowGemm(const double* a_row, size_t k, const double* b, size_t b_stride,
             size_t n, double* c_row);

}  // namespace spca::linalg::kernels

#endif  // SPCA_LINALG_KERNELS_H_
