#ifndef SPCA_LINALG_KERNELS_H_
#define SPCA_LINALG_KERNELS_H_

#include <cstddef>

#include "linalg/sparse_matrix.h"

namespace spca::linalg::kernels {

// Cache-friendly micro-kernels for the per-row operations that dominate the
// EM inner loops (Section 3.3's in-memory multiplication and the XtX / YtX
// accumulations). All kernels operate on contiguous double* rows obtained
// via DenseMatrix::RowPtr() and unroll only across the *output* (column)
// dimension: every output element sees exactly the same sequence of
// floating-point operations as the scalar loops they replace, so results
// are bit-identical. Reductions (DotRow) keep a single sequential
// accumulation chain for the same reason.
//
// The kernels live in their own translation unit (kernels.cc) compiled
// with more aggressive optimization flags than the rest of the library;
// see src/linalg/CMakeLists.txt.

/// out[j] += v * b[j] for j in [0, n). The axpy at the heart of every
/// row-times-matrix product and outer-product accumulation.
void AxpyRow(double v, const double* b, size_t n, double* out);

/// out[j] += b[j] for j in [0, n) (the v == 1 axpy without the multiply).
void AddRow(const double* b, size_t n, double* out);

/// Returns init + sum_j a[j] * b[j], accumulated strictly left to right
/// (a single dependency chain, never reassociated). Pass the running sum
/// as `init` to splice the product terms into an existing chain
/// bit-identically.
double DotRow(const double* a, const double* b, size_t n, double init = 0.0);

/// out(i, j) += a[i] * b[j] over the full rows x cols rectangle, where out
/// is row-major with the given stride. Rows with a[i] == 0 are skipped
/// (matching the scalar loops this replaces).
void Rank1Update(const double* a, size_t rows, const double* b, size_t cols,
                 double* out, size_t out_stride);

/// out += x * x' for a symmetric d x d accumulator (the XtX update),
/// touching the upper triangle (including the diagonal) ONLY — half the
/// multiply-adds of the full rectangle. Callers accumulate any number of
/// rows this way and then mirror once per partition with SymMirrorLower.
/// Since IEEE multiplication is exactly commutative (x[a]*x[b] ==
/// x[b]*x[a] bitwise), upper-then-mirror is bit-identical to the
/// full-rectangle scalar update it replaces.
void SymRank1Update(const double* x, size_t d, double* out, size_t stride);

/// Copies the upper triangle of a d x d row-major matrix into its lower
/// triangle (the finishing step after a run of SymRank1Update calls).
void SymMirrorLower(double* out, size_t d, size_t stride);

/// out[j] += sum_k entries[k].value * b(entries[k].index, j) for j in
/// [0, d): one CSR row times a dense (D x d) matrix with row stride
/// b_stride. Columns are processed in register-sized chunks, iterating the
/// entries innermost, so the accumulators stay in registers instead of
/// round-tripping through out[] once per entry. Per output element the
/// entry order is unchanged, so accumulation is bit-identical.
void SparseRowGemv(const SparseEntry* entries, size_t nnz, const double* b,
                   size_t b_stride, size_t d, double* out);

/// c_row[j] += sum_k a_row[k] * b(k, j): one output row of C = A * B with
/// b row-major of stride b_stride. Zero a_row[k] are skipped (matching the
/// scalar loops).
void RowGemm(const double* a_row, size_t k, const double* b, size_t b_stride,
             size_t n, double* c_row);

}  // namespace spca::linalg::kernels

#endif  // SPCA_LINALG_KERNELS_H_
