// NEON kernel variants (aarch64, where Advanced SIMD is baseline — no
// runtime feature check needed beyond being compiled for the target).
// Same numerical classification as the AVX2 TU: fused multiply-adds and
// multi-accumulator reductions put every kernel except AddRow in the
// 1e-12 tolerance tier; AddRow (pure adds, no reduction) stays
// bit-identical to scalar.

#include "linalg/kernel_dispatch.h"

#if defined(SPCA_KERNELS_HAVE_NEON)

#include <arm_neon.h>

namespace spca::linalg::kernels::neon {
namespace {

inline void AxpyRowImpl(double v, const double* b, size_t n, double* out) {
  const float64x2_t vv = vdupq_n_f64(v);
  size_t j = 0;
  for (; j + 8 <= n; j += 8) {
    vst1q_f64(out + j, vfmaq_f64(vld1q_f64(out + j), vv, vld1q_f64(b + j)));
    vst1q_f64(out + j + 2,
              vfmaq_f64(vld1q_f64(out + j + 2), vv, vld1q_f64(b + j + 2)));
    vst1q_f64(out + j + 4,
              vfmaq_f64(vld1q_f64(out + j + 4), vv, vld1q_f64(b + j + 4)));
    vst1q_f64(out + j + 6,
              vfmaq_f64(vld1q_f64(out + j + 6), vv, vld1q_f64(b + j + 6)));
  }
  for (; j + 2 <= n; j += 2) {
    vst1q_f64(out + j, vfmaq_f64(vld1q_f64(out + j), vv, vld1q_f64(b + j)));
  }
  for (; j < n; ++j) out[j] = __builtin_fma(v, b[j], out[j]);
}

}  // namespace

void AxpyRow(double v, const double* b, size_t n, double* out) {
  AxpyRowImpl(v, b, n, out);
}

void AddRow(const double* b, size_t n, double* out) {
  size_t j = 0;
  for (; j + 4 <= n; j += 4) {
    vst1q_f64(out + j, vaddq_f64(vld1q_f64(out + j), vld1q_f64(b + j)));
    vst1q_f64(out + j + 2,
              vaddq_f64(vld1q_f64(out + j + 2), vld1q_f64(b + j + 2)));
  }
  for (; j < n; ++j) out[j] += b[j];
}

double DotRow(const double* a, const double* b, size_t n, double init) {
  float64x2_t acc0 = vdupq_n_f64(0.0);
  float64x2_t acc1 = vdupq_n_f64(0.0);
  float64x2_t acc2 = vdupq_n_f64(0.0);
  float64x2_t acc3 = vdupq_n_f64(0.0);
  size_t j = 0;
  for (; j + 8 <= n; j += 8) {
    acc0 = vfmaq_f64(acc0, vld1q_f64(a + j), vld1q_f64(b + j));
    acc1 = vfmaq_f64(acc1, vld1q_f64(a + j + 2), vld1q_f64(b + j + 2));
    acc2 = vfmaq_f64(acc2, vld1q_f64(a + j + 4), vld1q_f64(b + j + 4));
    acc3 = vfmaq_f64(acc3, vld1q_f64(a + j + 6), vld1q_f64(b + j + 6));
  }
  for (; j + 2 <= n; j += 2) {
    acc0 = vfmaq_f64(acc0, vld1q_f64(a + j), vld1q_f64(b + j));
  }
  double sum =
      vaddvq_f64(vaddq_f64(vaddq_f64(acc0, acc1), vaddq_f64(acc2, acc3)));
  for (; j < n; ++j) sum = __builtin_fma(a[j], b[j], sum);
  return init + sum;
}

void Rank1Update(const double* a, size_t rows, const double* b, size_t cols,
                 double* out, size_t out_stride) {
  for (size_t i = 0; i < rows; ++i) {
    const double ai = a[i];
    if (ai == 0.0) continue;
    AxpyRowImpl(ai, b, cols, out + i * out_stride);
  }
}

void SymRank1Update(const double* x, size_t d, double* out, size_t stride) {
  for (size_t a = 0; a < d; ++a) {
    const double xa = x[a];
    double* row = out + a * stride;
    const float64x2_t vv = vdupq_n_f64(xa);
    size_t b = a;
    for (; b + 4 <= d; b += 4) {
      vst1q_f64(row + b, vfmaq_f64(vld1q_f64(row + b), vv, vld1q_f64(x + b)));
      vst1q_f64(row + b + 2,
                vfmaq_f64(vld1q_f64(row + b + 2), vv, vld1q_f64(x + b + 2)));
    }
    for (; b + 2 <= d; b += 2) {
      vst1q_f64(row + b, vfmaq_f64(vld1q_f64(row + b), vv, vld1q_f64(x + b)));
    }
    for (; b < d; ++b) row[b] = __builtin_fma(xa, x[b], row[b]);
  }
}

void SparseRowGemv(const SparseEntry* entries, size_t nnz, const double* b,
                   size_t b_stride, size_t d, double* out) {
  constexpr size_t kPrefetchAhead = 8;
  size_t j = 0;
  for (; j + 8 <= d; j += 8) {
    float64x2_t acc0 = vld1q_f64(out + j);
    float64x2_t acc1 = vld1q_f64(out + j + 2);
    float64x2_t acc2 = vld1q_f64(out + j + 4);
    float64x2_t acc3 = vld1q_f64(out + j + 6);
    for (size_t k = 0; k < nnz; ++k) {
      if (k + kPrefetchAhead < nnz) {
        __builtin_prefetch(b + entries[k + kPrefetchAhead].index * b_stride +
                           j);
      }
      const float64x2_t vv = vdupq_n_f64(entries[k].value);
      const double* row = b + entries[k].index * b_stride + j;
      acc0 = vfmaq_f64(acc0, vv, vld1q_f64(row));
      acc1 = vfmaq_f64(acc1, vv, vld1q_f64(row + 2));
      acc2 = vfmaq_f64(acc2, vv, vld1q_f64(row + 4));
      acc3 = vfmaq_f64(acc3, vv, vld1q_f64(row + 6));
    }
    vst1q_f64(out + j, acc0);
    vst1q_f64(out + j + 2, acc1);
    vst1q_f64(out + j + 4, acc2);
    vst1q_f64(out + j + 6, acc3);
  }
  for (; j + 2 <= d; j += 2) {
    float64x2_t acc = vld1q_f64(out + j);
    for (size_t k = 0; k < nnz; ++k) {
      acc = vfmaq_f64(acc, vdupq_n_f64(entries[k].value),
                      vld1q_f64(b + entries[k].index * b_stride + j));
    }
    vst1q_f64(out + j, acc);
  }
  for (; j < d; ++j) {
    double acc = out[j];
    for (size_t k = 0; k < nnz; ++k) {
      acc = __builtin_fma(entries[k].value,
                          b[entries[k].index * b_stride + j], acc);
    }
    out[j] = acc;
  }
}

void RowGemm(const double* a_row, size_t k, const double* b, size_t b_stride,
             size_t n, double* c_row) {
  constexpr size_t kKBlock = 64;
  for (size_t k0 = 0; k0 < k; k0 += kKBlock) {
    const size_t k1 = k0 + kKBlock < k ? k0 + kKBlock : k;
    size_t j = 0;
    for (; j + 8 <= n; j += 8) {
      float64x2_t acc0 = vld1q_f64(c_row + j);
      float64x2_t acc1 = vld1q_f64(c_row + j + 2);
      float64x2_t acc2 = vld1q_f64(c_row + j + 4);
      float64x2_t acc3 = vld1q_f64(c_row + j + 6);
      for (size_t kk = k0; kk < k1; ++kk) {
        const float64x2_t vv = vdupq_n_f64(a_row[kk]);
        const double* row = b + kk * b_stride + j;
        acc0 = vfmaq_f64(acc0, vv, vld1q_f64(row));
        acc1 = vfmaq_f64(acc1, vv, vld1q_f64(row + 2));
        acc2 = vfmaq_f64(acc2, vv, vld1q_f64(row + 4));
        acc3 = vfmaq_f64(acc3, vv, vld1q_f64(row + 6));
      }
      vst1q_f64(c_row + j, acc0);
      vst1q_f64(c_row + j + 2, acc1);
      vst1q_f64(c_row + j + 4, acc2);
      vst1q_f64(c_row + j + 6, acc3);
    }
    for (; j + 2 <= n; j += 2) {
      float64x2_t acc = vld1q_f64(c_row + j);
      for (size_t kk = k0; kk < k1; ++kk) {
        acc = vfmaq_f64(acc, vdupq_n_f64(a_row[kk]),
                        vld1q_f64(b + kk * b_stride + j));
      }
      vst1q_f64(c_row + j, acc);
    }
    for (; j < n; ++j) {
      double acc = c_row[j];
      for (size_t kk = k0; kk < k1; ++kk) {
        acc = __builtin_fma(a_row[kk], b[kk * b_stride + j], acc);
      }
      c_row[j] = acc;
    }
  }
}

}  // namespace spca::linalg::kernels::neon

#endif  // SPCA_KERNELS_HAVE_NEON
