#include "linalg/kernel_dispatch.h"

// Portable scalar kernel variants — the exact tier. These are the
// pre-SIMD kernel-layer loops, verbatim: unrolled only across
// *independent output elements*, reductions kept as one strictly
// sequential chain, and no FMA contraction (see the CMake flags on this
// file: -ffp-contract=off pins that down even at -O3). Per output
// element the floating-point operations execute in exactly the order of
// the original scalar triple loops, so a forced-scalar build reproduces
// tests/golden/fit_bits.golden bit for bit.

#if defined(__GNUC__) || defined(__clang__)
#define SPCA_RESTRICT __restrict__
#else
#define SPCA_RESTRICT
#endif

namespace spca::linalg::kernels::scalar {

void AxpyRow(double v, const double* b, size_t n, double* out) {
  const double* SPCA_RESTRICT bp = b;
  double* SPCA_RESTRICT op = out;
  size_t j = 0;
  for (; j + 4 <= n; j += 4) {
    op[j] += v * bp[j];
    op[j + 1] += v * bp[j + 1];
    op[j + 2] += v * bp[j + 2];
    op[j + 3] += v * bp[j + 3];
  }
  for (; j < n; ++j) op[j] += v * bp[j];
}

void AddRow(const double* b, size_t n, double* out) {
  const double* SPCA_RESTRICT bp = b;
  double* SPCA_RESTRICT op = out;
  size_t j = 0;
  for (; j + 4 <= n; j += 4) {
    op[j] += bp[j];
    op[j + 1] += bp[j + 1];
    op[j + 2] += bp[j + 2];
    op[j + 3] += bp[j + 3];
  }
  for (; j < n; ++j) op[j] += bp[j];
}

double DotRow(const double* a, const double* b, size_t n, double init) {
  // Unrolled for loop overhead only: the accumulator is one strictly
  // left-to-right dependency chain, never split into partial sums, so the
  // result is bit-identical to the naive loop (and to splicing into a
  // caller's running sum via `init`).
  double acc = init;
  size_t j = 0;
  for (; j + 4 <= n; j += 4) {
    acc += a[j] * b[j];
    acc += a[j + 1] * b[j + 1];
    acc += a[j + 2] * b[j + 2];
    acc += a[j + 3] * b[j + 3];
  }
  for (; j < n; ++j) acc += a[j] * b[j];
  return acc;
}

void Rank1Update(const double* a, size_t rows, const double* b, size_t cols,
                 double* out, size_t out_stride) {
  for (size_t i = 0; i < rows; ++i) {
    const double ai = a[i];
    if (ai == 0.0) continue;
    AxpyRow(ai, b, cols, out + i * out_stride);
  }
}

void SymRank1Update(const double* x, size_t d, double* out, size_t stride) {
  const double* SPCA_RESTRICT xp = x;
  for (size_t a = 0; a < d; ++a) {
    const double xa = xp[a];
    double* SPCA_RESTRICT row = out + a * stride;
    size_t b = a;
    for (; b + 4 <= d; b += 4) {
      row[b] += xa * xp[b];
      row[b + 1] += xa * xp[b + 1];
      row[b + 2] += xa * xp[b + 2];
      row[b + 3] += xa * xp[b + 3];
    }
    for (; b < d; ++b) row[b] += xa * xp[b];
  }
}

void SparseRowGemv(const SparseEntry* entries, size_t nnz, const double* b,
                   size_t b_stride, size_t d, double* out) {
  // Column-chunked: for each register-sized block of output columns, sweep
  // the entries innermost so the accumulators never leave registers. Per
  // output element the entries are still visited in CSR order, starting
  // from the prior out[] value — the same accumulation sequence as the
  // entry-outer scalar loop.
  constexpr size_t kChunk = 8;
  double* SPCA_RESTRICT op = out;
  size_t j = 0;
  for (; j + kChunk <= d; j += kChunk) {
    double acc0 = op[j], acc1 = op[j + 1], acc2 = op[j + 2], acc3 = op[j + 3];
    double acc4 = op[j + 4], acc5 = op[j + 5], acc6 = op[j + 6],
           acc7 = op[j + 7];
    for (size_t k = 0; k < nnz; ++k) {
      const double v = entries[k].value;
      const double* SPCA_RESTRICT row = b + entries[k].index * b_stride + j;
      acc0 += v * row[0];
      acc1 += v * row[1];
      acc2 += v * row[2];
      acc3 += v * row[3];
      acc4 += v * row[4];
      acc5 += v * row[5];
      acc6 += v * row[6];
      acc7 += v * row[7];
    }
    op[j] = acc0;
    op[j + 1] = acc1;
    op[j + 2] = acc2;
    op[j + 3] = acc3;
    op[j + 4] = acc4;
    op[j + 5] = acc5;
    op[j + 6] = acc6;
    op[j + 7] = acc7;
  }
  for (; j < d; ++j) {
    double acc = op[j];
    for (size_t k = 0; k < nnz; ++k) {
      acc += entries[k].value * b[entries[k].index * b_stride + j];
    }
    op[j] = acc;
  }
}

void RowGemm(const double* a_row, size_t k, const double* b, size_t b_stride,
             size_t n, double* c_row) {
  for (size_t kk = 0; kk < k; ++kk) {
    const double aik = a_row[kk];
    if (aik == 0.0) continue;
    AxpyRow(aik, b + kk * b_stride, n, c_row);
  }
}

}  // namespace spca::linalg::kernels::scalar
