#ifndef SPCA_LINALG_OPS_H_
#define SPCA_LINALG_OPS_H_

#include "linalg/dense_matrix.h"
#include "linalg/sparse_matrix.h"

namespace spca::linalg {

/// C = A * B. Shapes: (n x k) * (k x m) -> (n x m).
DenseMatrix Multiply(const DenseMatrix& a, const DenseMatrix& b);

/// C = A' * B. Shapes: (k x n)' * (k x m) -> (n x m). Computed row-by-row
/// as sum_r (A_r)' * B_r (the paper's Equation 2), no explicit transpose.
DenseMatrix TransposeMultiply(const DenseMatrix& a, const DenseMatrix& b);

/// C = A * B'. Shapes: (n x k) * (m x k)' -> (n x m).
DenseMatrix MultiplyTranspose(const DenseMatrix& a, const DenseMatrix& b);

/// y = A * x. Shapes: (n x m) * (m) -> (n).
DenseVector MultiplyVector(const DenseMatrix& a, const DenseVector& x);

/// y = A' * x = (x' * A)'. Shapes: (n x m)' * (n) -> (m).
DenseVector TransposeMultiplyVector(const DenseMatrix& a,
                                    const DenseVector& x);

/// Row-vector times matrix: out = row * B where row has B.rows() elements
/// and out has B.cols(). This is the paper's in-memory multiplication
/// (A*B)_i = A_i * B with B broadcast to every worker.
DenseVector RowTimesMatrix(const DenseVector& row, const DenseMatrix& b);

/// Sparse-row times dense matrix: out = y_i * B, touching only the
/// non-zeros of y_i. Cost O(nnz * B.cols()) instead of O(D * B.cols()).
DenseVector SparseRowTimesMatrix(const SparseRowView& row,
                                 const DenseMatrix& b);

/// out += outer product a * b' where a has `rows` elements (column) and b'
/// has `cols` (row). out must be (a.size() x b.size()).
void AddOuterProduct(const DenseVector& a, const DenseVector& b,
                     DenseMatrix* out);

/// out += y_i' * b where y_i is sparse (column vector of dim D) and b is a
/// dense row (1 x d): touches only nnz(y_i) rows of out. The sparse
/// accumulator update from the paper's Spark YtXJob (Section 4.2).
void AddSparseOuterProduct(const SparseRowView& row, const DenseVector& b,
                           DenseMatrix* out);

/// C = Y * B for a sparse Y (N x D) and dense B (D x m): row-wise sparse
/// products.
DenseMatrix SparseTimesDense(const SparseMatrix& y, const DenseMatrix& b);

/// Returns A with each row mean-centered: A_i - mean (a dense result; the
/// *unoptimized* eager mean-centering path used for ablations).
DenseMatrix MeanCenter(const DenseMatrix& a, const DenseVector& mean);

/// Per-column means of a dense matrix.
DenseVector ColumnMeans(const DenseMatrix& a);

}  // namespace spca::linalg

#endif  // SPCA_LINALG_OPS_H_
