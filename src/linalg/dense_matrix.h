#ifndef SPCA_LINALG_DENSE_MATRIX_H_
#define SPCA_LINALG_DENSE_MATRIX_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "common/aligned.h"
#include "common/check.h"

namespace spca {

class Rng;

namespace linalg {

/// Dense column vector of doubles with the small set of operations the PCA
/// algorithms need. Semantically a D-dimensional point; also used for row
/// vectors where noted.
class DenseVector {
 public:
  DenseVector() = default;
  /// Zero vector of the given size.
  explicit DenseVector(size_t size) : data_(size, 0.0) {}
  /// Copies the given values into aligned storage.
  explicit DenseVector(const std::vector<double>& values)
      : data_(values.begin(), values.end()) {}

  size_t size() const { return data_.size(); }
  double operator[](size_t i) const { return data_[i]; }
  double& operator[](size_t i) { return data_[i]; }
  const double* data() const { return data_.data(); }
  double* data() { return data_.data(); }
  const AlignedDoubleBuffer& values() const { return data_; }

  /// this += other. Sizes must match.
  void Add(const DenseVector& other);
  /// this -= other. Sizes must match.
  void Subtract(const DenseVector& other);
  /// this += alpha * other. Sizes must match.
  void AddScaled(double alpha, const DenseVector& other);
  /// this *= alpha.
  void Scale(double alpha);
  /// Sets every element to zero, keeping the size.
  void SetZero();

  /// Inner product with another vector of the same size.
  double Dot(const DenseVector& other) const;
  /// Sum of squares of the elements.
  double SquaredNorm() const;
  /// Euclidean norm.
  double Norm2() const;
  /// Sum of absolute values (1-norm).
  double Norm1() const;

 private:
  AlignedDoubleBuffer data_;
};

/// Dense row-major matrix of doubles. This is the workhorse for all the
/// small driver-side matrices (C, M, XtX, ...) in the paper's algorithms.
/// Storage is one contiguous rows*cols buffer whose base is cache-line
/// (64-byte) aligned — the SIMD kernel layer's alignment contract: rows
/// are row_stride() == cols() doubles apart (no padding), kernels never
/// *require* alignment, but the aligned base keeps whole-matrix sweeps
/// and the common aligned-row case from splitting cache lines.
class DenseMatrix {
 public:
  DenseMatrix() : rows_(0), cols_(0) {}
  /// Zero matrix of the given shape.
  DenseMatrix(size_t rows, size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

  /// d x d identity.
  static DenseMatrix Identity(size_t n);
  /// Matrix with i.i.d. Normal(0, stddev) entries; the paper's normrnd().
  static DenseMatrix GaussianRandom(size_t rows, size_t cols, Rng* rng,
                                    double stddev = 1.0);

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  /// Number of stored doubles (rows * cols).
  size_t size() const { return data_.size(); }
  /// Serialized size in bytes; used by the communication accounting.
  size_t ByteSize() const { return data_.size() * sizeof(double); }

  double operator()(size_t i, size_t j) const {
    return data_[i * cols_ + j];
  }
  double& operator()(size_t i, size_t j) { return data_[i * cols_ + j]; }

  /// Contiguous view of row i.
  std::span<const double> Row(size_t i) const {
    return {data_.data() + i * cols_, cols_};
  }
  std::span<double> Row(size_t i) {
    return {data_.data() + i * cols_, cols_};
  }

  /// Raw pointer to the first element of row i; rows are contiguous and
  /// row_stride() doubles apart. This is what the linalg/kernels.h
  /// micro-kernels consume.
  const double* RowPtr(size_t i) const { return data_.data() + i * cols_; }
  double* RowPtr(size_t i) { return data_.data() + i * cols_; }
  /// Distance in doubles between consecutive rows (== cols()).
  size_t row_stride() const { return cols_; }

  const double* data() const { return data_.data(); }
  double* data() { return data_.data(); }

  /// this += other. Shapes must match.
  void Add(const DenseMatrix& other);
  /// this -= other. Shapes must match.
  void Subtract(const DenseMatrix& other);
  /// this += alpha * other. Shapes must match.
  void AddScaled(double alpha, const DenseMatrix& other);
  /// this *= alpha.
  void Scale(double alpha);
  /// Adds alpha to each diagonal element (this += alpha * I). Square only.
  void AddScaledIdentity(double alpha);
  /// Sets every element to zero, keeping the shape.
  void SetZero();

  /// Returns the transpose as a new matrix.
  DenseMatrix Transpose() const;
  /// Sum of diagonal elements. Square only.
  double Trace() const;
  /// Square of the Frobenius norm.
  double FrobeniusNorm2() const;
  /// Entry-wise 1-norm (sum of absolute values).
  double EntrywiseNorm1() const;
  /// Copy of row i as a vector.
  DenseVector RowVector(size_t i) const;
  /// Copy of column j as a vector.
  DenseVector ColVector(size_t j) const;
  /// Largest absolute difference against another matrix of the same shape.
  double MaxAbsDiff(const DenseMatrix& other) const;

 private:
  size_t rows_;
  size_t cols_;
  AlignedDoubleBuffer data_;
};

}  // namespace linalg
}  // namespace spca

#endif  // SPCA_LINALG_DENSE_MATRIX_H_
