#ifndef SPCA_LINALG_KERNEL_DISPATCH_H_
#define SPCA_LINALG_KERNEL_DISPATCH_H_

#include <cstddef>

#include "linalg/sparse_matrix.h"

// Runtime ISA dispatch for the linalg/kernels.h micro-kernels.
//
// Every kernel exists in up to three variants, each in its own
// translation unit compiled with the matching target flags:
//
//   kernels::scalar::*   portable C++, always compiled. Bit-identical to
//                        the pre-SIMD kernel layer (and therefore to the
//                        original scalar triple loops): element-wise
//                        unrolling only, single sequential reduction
//                        chains, no FMA contraction.
//   kernels::avx2::*     AVX2 + FMA (x86-64), compiled when the
//                        SPCA_SIMD CMake gate is on. Uses fused
//                        multiply-add and multi-accumulator reductions,
//                        so results can differ from scalar in the last
//                        ulps (see the two golden tiers in kernels.h).
//   kernels::neon::*     NEON (aarch64), same numerical caveats as AVX2.
//
// The public kernels in kernels.h forward through a function-pointer
// table resolved exactly once per process:
//
//   1. If SPCA_KERNEL_ISA=scalar|avx2|neon is set in the environment and
//      that ISA is compiled in and supported by the host, it is used
//      (the forced-scalar test/CI legs rely on this). An unavailable
//      request falls back to scalar with a one-time stderr warning —
//      never to an illegal instruction.
//   2. Otherwise the best ISA the host supports wins: avx2 (CPUID check
//      for AVX2 *and* FMA) > neon > scalar.
//
// Resolution is per-process, so any two computations in one process run
// on the same ISA — cross-run bit-identity properties (replay == live,
// batched == row-at-a-time, checkpoint/resume) are ISA-independent.

namespace spca::linalg::kernels {

enum class Isa { kScalar = 0, kAvx2 = 1, kNeon = 2 };

/// The ISA the function-pointer table resolved to (resolves on first
/// call). Stable for the lifetime of the process.
Isa DispatchedIsa();

/// "scalar", "avx2", or "neon".
const char* IsaName(Isa isa);
const char* DispatchedIsaName();

/// True when the variant is compiled in AND the host can execute it.
bool IsaAvailable(Isa isa);

// Per-ISA variants, directly callable regardless of what the dispatcher
// picked. The property tests compare every SIMD kernel against its
// scalar twin through these; benches use them for per-ISA timings.

#define SPCA_KERNEL_SIGNATURES                                               \
  void AxpyRow(double v, const double* b, size_t n, double* out);            \
  void AddRow(const double* b, size_t n, double* out);                       \
  double DotRow(const double* a, const double* b, size_t n,                  \
                double init = 0.0);                                          \
  void Rank1Update(const double* a, size_t rows, const double* b,            \
                   size_t cols, double* out, size_t out_stride);             \
  void SymRank1Update(const double* x, size_t d, double* out,                \
                      size_t stride);                                        \
  void SparseRowGemv(const SparseEntry* entries, size_t nnz,                 \
                     const double* b, size_t b_stride, size_t d,             \
                     double* out);                                           \
  void RowGemm(const double* a_row, size_t k, const double* b,               \
               size_t b_stride, size_t n, double* c_row);

namespace scalar {
SPCA_KERNEL_SIGNATURES
}  // namespace scalar

#if defined(SPCA_KERNELS_HAVE_AVX2)
namespace avx2 {
SPCA_KERNEL_SIGNATURES
}  // namespace avx2
#endif

#if defined(SPCA_KERNELS_HAVE_NEON)
namespace neon {
SPCA_KERNEL_SIGNATURES
}  // namespace neon
#endif

#undef SPCA_KERNEL_SIGNATURES

}  // namespace spca::linalg::kernels

#endif  // SPCA_LINALG_KERNEL_DISPATCH_H_
