#ifndef SPCA_LINALG_SVD_H_
#define SPCA_LINALG_SVD_H_

#include "common/status.h"
#include "linalg/dense_matrix.h"

namespace spca::linalg {

/// Thin singular value decomposition A = U * diag(s) * V', with A (n x m):
/// U is (n x k), V is (m x k), k = min(n, m). Singular values descend.
struct SvdResult {
  DenseMatrix u;
  DenseVector singular_values;
  DenseMatrix v;
};

/// Golub–Kahan bidiagonalization A = U * B * V' for A (n x m), n >= m:
/// B is m x m upper bidiagonal, stored as its diagonal and superdiagonal.
struct BidiagonalizeResult {
  DenseMatrix u;          // n x m, orthonormal columns
  DenseVector diag;       // m
  DenseVector superdiag;  // m - 1
  DenseMatrix v;          // m x m, orthogonal
};

/// Householder bidiagonalization (step 2 of the paper's SVD-Bidiag method).
/// Fails if n < m.
StatusOr<BidiagonalizeResult> Bidiagonalize(const DenseMatrix& a);

/// Reconstructs the dense m x m bidiagonal matrix B from its bands
/// (test/diagnostic helper).
DenseMatrix BidiagonalToDense(const DenseVector& diag,
                              const DenseVector& superdiag);

/// One-sided Jacobi thin SVD for a tall (or square) matrix, n >= m.
/// Very robust; O(n m^2) per sweep, intended for small m.
StatusOr<SvdResult> SvdJacobi(const DenseMatrix& a, int max_sweeps = 64);

/// Thin SVD of an arbitrary dense matrix: uses one-sided Jacobi on A or A'
/// depending on shape. Suitable for small-to-medium matrices.
StatusOr<SvdResult> Svd(const DenseMatrix& a);

/// Thin SVD of a *wide* matrix A (k x D, k << D) via the eigendecomposition
/// of the small Gram matrix A*A' (k x k). This is how the stochastic-SVD
/// baseline finishes: B = Q'*Y is short and wide, so the Gram trick avoids
/// any O(D^2) work. Singular values below `rank_tolerance` (relative to the
/// largest) are dropped.
StatusOr<SvdResult> SvdWideViaGram(const DenseMatrix& a,
                                   double rank_tolerance = 1e-12);

}  // namespace spca::linalg

#endif  // SPCA_LINALG_SVD_H_
