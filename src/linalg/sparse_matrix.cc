#include "linalg/sparse_matrix.h"

#include <cmath>

namespace spca::linalg {

double SparseRowView::Dot(const DenseVector& dense) const {
  SPCA_CHECK_EQ(dim_, dense.size());
  double sum = 0.0;
  for (const auto& e : entries_) sum += e.value * dense[e.index];
  return sum;
}

double SparseRowView::DotColumn(const DenseMatrix& dense, size_t j) const {
  SPCA_CHECK_EQ(dim_, dense.rows());
  double sum = 0.0;
  for (const auto& e : entries_) sum += e.value * dense(e.index, j);
  return sum;
}

double SparseRowView::SquaredNorm() const {
  double sum = 0.0;
  for (const auto& e : entries_) sum += e.value * e.value;
  return sum;
}

double SparseRowView::Sum() const {
  double sum = 0.0;
  for (const auto& e : entries_) sum += e.value;
  return sum;
}

SparseVector::SparseVector(std::vector<SparseEntry> entries, size_t dim)
    : entries_(std::move(entries)), dim_(dim) {
  for (size_t k = 0; k < entries_.size(); ++k) {
    SPCA_CHECK_LT(entries_[k].index, dim_);
    if (k > 0) SPCA_CHECK_LT(entries_[k - 1].index, entries_[k].index);
  }
}

SparseVector SparseVector::FromDense(const DenseVector& dense,
                                     double tolerance) {
  std::vector<SparseEntry> entries;
  for (size_t i = 0; i < dense.size(); ++i) {
    if (std::fabs(dense[i]) > tolerance) {
      entries.push_back({static_cast<uint32_t>(i), dense[i]});
    }
  }
  return SparseVector(std::move(entries), dense.size());
}

SparseMatrix::SparseMatrix(size_t rows, size_t cols)
    : rows_(rows), cols_(cols) {
  row_ptr_.assign(rows + 1, 0);
  appended_rows_ = 0;
}

void SparseMatrix::AppendRow(size_t row, std::span<const SparseEntry> entries) {
  SPCA_CHECK_EQ(row, appended_rows_);
  SPCA_CHECK_LT(row, rows_);
  for (size_t k = 0; k < entries.size(); ++k) {
    SPCA_CHECK_LT(entries[k].index, cols_);
    if (k > 0) SPCA_CHECK_LT(entries[k - 1].index, entries[k].index);
    entries_.push_back(entries[k]);
  }
  row_ptr_[row + 1] = entries_.size();
  ++appended_rows_;
}

DenseMatrix SparseMatrix::ToDense() const {
  DenseMatrix dense(rows_, cols_);
  for (size_t i = 0; i < rows_; ++i) {
    for (const auto& e : Row(i)) dense(i, e.index) = e.value;
  }
  return dense;
}

SparseMatrix SparseMatrix::FromDense(const DenseMatrix& dense,
                                     double tolerance) {
  SparseMatrix sparse(dense.rows(), dense.cols());
  std::vector<SparseEntry> row;
  for (size_t i = 0; i < dense.rows(); ++i) {
    row.clear();
    for (size_t j = 0; j < dense.cols(); ++j) {
      if (std::fabs(dense(i, j)) > tolerance) {
        row.push_back({static_cast<uint32_t>(j), dense(i, j)});
      }
    }
    sparse.AppendRow(i, row);
  }
  return sparse;
}

DenseVector SparseMatrix::ColumnMeans() const {
  DenseVector means(cols_);
  for (const auto& e : entries_) means[e.index] += e.value;
  if (rows_ > 0) means.Scale(1.0 / static_cast<double>(rows_));
  return means;
}

double SparseMatrix::FrobeniusNorm2() const {
  double sum = 0.0;
  for (const auto& e : entries_) sum += e.value * e.value;
  return sum;
}

}  // namespace spca::linalg
