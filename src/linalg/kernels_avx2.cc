// AVX2 + FMA kernel variants (x86-64). Compiled with -mavx2 -mfma when
// the SPCA_SIMD CMake gate is on; only ever *called* after the dispatcher
// verified AVX2+FMA via CPUID (see kernels.cc), so this TU may use the
// intrinsics unconditionally.
//
// Numerics: these are the tolerance tier. Fused multiply-adds round once
// instead of twice and the reductions (DotRow, and the per-column chains
// in SparseRowGemv/RowGemm k-blocking) run several accumulators in
// parallel, so results can differ from the scalar twins in the last ulps
// — kernels_test bounds the difference at 1e-12 relative on every kernel,
// and the fit golden is checked at the same tolerance when this path is
// dispatched. AddRow contains no multiplies and no reduction, so it stays
// bit-identical to scalar (and is tested exactly).
//
// All loads/stores are unaligned ops (vmovupd): DenseMatrix aligns its
// allocations to 64 bytes so the hot rows usually *are* aligned (no
// cache-line split), but correctness never depends on it — kernels also
// run on arbitrary interior row slices.

#include "linalg/kernel_dispatch.h"

#if defined(SPCA_KERNELS_HAVE_AVX2)

#include <immintrin.h>

#if defined(__GNUC__) || defined(__clang__)
#define SPCA_RESTRICT __restrict__
// The register stripes MUST inline into their caller: as a standalone
// function GCC leaves the __m256d acc[NV] array unpromoted (every
// accumulator round-trips through the stack each iteration); inlined,
// the array scalarizes fully into ymm registers.
#define SPCA_STRIPE_INLINE __attribute__((always_inline)) inline
#else
#define SPCA_RESTRICT
#define SPCA_STRIPE_INLINE inline
#endif

namespace spca::linalg::kernels::avx2 {
namespace {

inline double HSum(__m256d v) {
  __m128d lo = _mm256_castpd256_pd128(v);
  const __m128d hi = _mm256_extractf128_pd(v, 1);
  lo = _mm_add_pd(lo, hi);
  const __m128d swapped = _mm_unpackhi_pd(lo, lo);
  return _mm_cvtsd_f64(_mm_add_sd(lo, swapped));
}

// Shared axpy body so Rank1Update's row loop inlines it without the
// dispatch indirection.
inline void AxpyRowImpl(double v, const double* b, size_t n, double* out) {
  const __m256d vv = _mm256_set1_pd(v);
  size_t j = 0;
  for (; j + 16 <= n; j += 16) {
    _mm256_storeu_pd(
        out + j,
        _mm256_fmadd_pd(vv, _mm256_loadu_pd(b + j), _mm256_loadu_pd(out + j)));
    _mm256_storeu_pd(out + j + 4,
                     _mm256_fmadd_pd(vv, _mm256_loadu_pd(b + j + 4),
                                     _mm256_loadu_pd(out + j + 4)));
    _mm256_storeu_pd(out + j + 8,
                     _mm256_fmadd_pd(vv, _mm256_loadu_pd(b + j + 8),
                                     _mm256_loadu_pd(out + j + 8)));
    _mm256_storeu_pd(out + j + 12,
                     _mm256_fmadd_pd(vv, _mm256_loadu_pd(b + j + 12),
                                     _mm256_loadu_pd(out + j + 12)));
  }
  for (; j + 4 <= n; j += 4) {
    _mm256_storeu_pd(
        out + j,
        _mm256_fmadd_pd(vv, _mm256_loadu_pd(b + j), _mm256_loadu_pd(out + j)));
  }
  for (; j < n; ++j) out[j] = __builtin_fma(v, b[j], out[j]);
}

}  // namespace

void AxpyRow(double v, const double* b, size_t n, double* out) {
  AxpyRowImpl(v, b, n, out);
}

void AddRow(const double* b, size_t n, double* out) {
  size_t j = 0;
  for (; j + 8 <= n; j += 8) {
    _mm256_storeu_pd(out + j, _mm256_add_pd(_mm256_loadu_pd(out + j),
                                            _mm256_loadu_pd(b + j)));
    _mm256_storeu_pd(out + j + 4, _mm256_add_pd(_mm256_loadu_pd(out + j + 4),
                                                _mm256_loadu_pd(b + j + 4)));
  }
  for (; j + 4 <= n; j += 4) {
    _mm256_storeu_pd(out + j, _mm256_add_pd(_mm256_loadu_pd(out + j),
                                            _mm256_loadu_pd(b + j)));
  }
  for (; j < n; ++j) out[j] += b[j];
}

double DotRow(const double* a, const double* b, size_t n, double init) {
  __m256d acc0 = _mm256_setzero_pd();
  __m256d acc1 = _mm256_setzero_pd();
  __m256d acc2 = _mm256_setzero_pd();
  __m256d acc3 = _mm256_setzero_pd();
  size_t j = 0;
  for (; j + 16 <= n; j += 16) {
    acc0 = _mm256_fmadd_pd(_mm256_loadu_pd(a + j), _mm256_loadu_pd(b + j),
                           acc0);
    acc1 = _mm256_fmadd_pd(_mm256_loadu_pd(a + j + 4),
                           _mm256_loadu_pd(b + j + 4), acc1);
    acc2 = _mm256_fmadd_pd(_mm256_loadu_pd(a + j + 8),
                           _mm256_loadu_pd(b + j + 8), acc2);
    acc3 = _mm256_fmadd_pd(_mm256_loadu_pd(a + j + 12),
                           _mm256_loadu_pd(b + j + 12), acc3);
  }
  for (; j + 4 <= n; j += 4) {
    acc0 = _mm256_fmadd_pd(_mm256_loadu_pd(a + j), _mm256_loadu_pd(b + j),
                           acc0);
  }
  double sum = HSum(
      _mm256_add_pd(_mm256_add_pd(acc0, acc1), _mm256_add_pd(acc2, acc3)));
  for (; j < n; ++j) sum = __builtin_fma(a[j], b[j], sum);
  return init + sum;
}

void Rank1Update(const double* a, size_t rows, const double* b, size_t cols,
                 double* out, size_t out_stride) {
  for (size_t i = 0; i < rows; ++i) {
    const double ai = a[i];
    if (ai == 0.0) continue;
    AxpyRowImpl(ai, b, cols, out + i * out_stride);
  }
}

void SymRank1Update(const double* x, size_t d, double* out, size_t stride) {
  // Row pairing: rows a and a+1 share every x[b] vector load, and the
  // per-row loop prologue/epilogue (the dominant cost for small d, where
  // triangle rows are only a handful of elements) is paid once per pair.
  // The 2x2 corner at the diagonal is peeled off scalar so both rows'
  // vector loops start at the same column a+2.
  size_t a = 0;
  for (; a + 2 <= d; a += 2) {
    const double xa0 = x[a];
    const double xa1 = x[a + 1];
    double* row0 = out + a * stride;
    double* row1 = row0 + stride;
    row0[a] = __builtin_fma(xa0, xa0, row0[a]);
    row0[a + 1] = __builtin_fma(xa0, xa1, row0[a + 1]);
    row1[a + 1] = __builtin_fma(xa1, xa1, row1[a + 1]);
    const __m256d v0 = _mm256_set1_pd(xa0);
    const __m256d v1 = _mm256_set1_pd(xa1);
    size_t b = a + 2;
    for (; b + 8 <= d; b += 8) {
      const __m256d xb0 = _mm256_loadu_pd(x + b);
      const __m256d xb1 = _mm256_loadu_pd(x + b + 4);
      _mm256_storeu_pd(row0 + b,
                       _mm256_fmadd_pd(v0, xb0, _mm256_loadu_pd(row0 + b)));
      _mm256_storeu_pd(
          row0 + b + 4,
          _mm256_fmadd_pd(v0, xb1, _mm256_loadu_pd(row0 + b + 4)));
      _mm256_storeu_pd(row1 + b,
                       _mm256_fmadd_pd(v1, xb0, _mm256_loadu_pd(row1 + b)));
      _mm256_storeu_pd(
          row1 + b + 4,
          _mm256_fmadd_pd(v1, xb1, _mm256_loadu_pd(row1 + b + 4)));
    }
    for (; b + 4 <= d; b += 4) {
      const __m256d xb = _mm256_loadu_pd(x + b);
      _mm256_storeu_pd(row0 + b,
                       _mm256_fmadd_pd(v0, xb, _mm256_loadu_pd(row0 + b)));
      _mm256_storeu_pd(row1 + b,
                       _mm256_fmadd_pd(v1, xb, _mm256_loadu_pd(row1 + b)));
    }
    for (; b < d; ++b) {
      row0[b] = __builtin_fma(xa0, x[b], row0[b]);
      row1[b] = __builtin_fma(xa1, x[b], row1[b]);
    }
  }
  if (a < d) {  // odd d: the last row is just its diagonal element
    double* row = out + a * stride;
    row[a] = __builtin_fma(x[a], x[a], row[a]);
  }
}

namespace {

// Lane mask for a partial (1-3 column) trailing vector. vmaskmovpd
// suppresses loads/stores (and faults) on disabled lanes, so the masked
// vector may extend past the end of a row.
inline __m256i TailMask(size_t rem) {
  alignas(32) static const int64_t kMask[3][4] = {
      {-1, 0, 0, 0}, {-1, -1, 0, 0}, {-1, -1, -1, 0}};
  return _mm256_load_si256(
      reinterpret_cast<const __m256i*>(kMask[rem - 1]));
}

// One column stripe of a row-times-matrix product, with the stripe of c
// held in NV ymm accumulators across the ENTIRE k sweep: c never touches
// memory inside the stripe, b is streamed through sequentially (hardware-
// prefetcher friendly), and each b cache line is read by exactly one
// stripe. NV = 12 (48 columns) uses 12 of the 16 ymm registers and keeps
// both FMA ports saturated; the d <= 48 shapes of the paper's workloads
// run as one stripe with zero c traffic.
//
// kHasRem appends a partial tail vector (`rem` = 1-3 columns) so a
// 50-wide row is ONE pass — peeling those columns into a scalar loop
// would re-stream b's tail cache lines and serialize on FMA latency
// (that chain alone cost ~25% of the d = 50 product). The tail is an
// ORDINARY unmasked load: lanes rem..3 read bytes past the logical row
// end, which the tail-padding contract (aligned.h, DESIGN.md par.8)
// guarantees are readable — either the next row's head or the buffer's
// zeroed padding. Their products are discarded by the masked store at
// the end, so only rem columns of c change. A per-iteration
// _mm256_maskload_pd here instead would cost an extra ymm for the mask
// plus a slower load µop and push the d = 50 shape past 16 live
// registers, forcing the stripe to split into two passes over b.
template <int NV, bool kHasRem>
SPCA_STRIPE_INLINE void RowGemmStripe(const double* SPCA_RESTRICT a_row,
                                      size_t k, const double* SPCA_RESTRICT b,
                                      size_t b_stride,
                                      double* SPCA_RESTRICT c, size_t rem) {
  static_assert(NV >= 1 && NV <= 12, "more than 12 vectors cannot stay "
                                     "register-resident");
  // Prefetch b a few rows ahead into L1: when b is bigger than L1 the
  // hardware stride prefetcher only pulls the rows as far as L2, and the
  // ~6 L1 misses per 50-column row otherwise serialize on the load
  // buffer. For L1-resident b the redundant prefetches cost ~a cycle per
  // row. Rows are b_stride (not 4*NV) apart, so for narrow stripes only
  // the stripe's own lines are touched.
  constexpr size_t kPrefetchRows = 4;
  constexpr int kPrefetchSpan = NV * 32 + (kHasRem ? 32 : 0);
  // Accumulators start at zero and c is folded in at the final store: if
  // they were initialized by loading c, GCC turns the init/store loops
  // into stack memcpys, the array stays memory-backed, and every
  // iteration pays NV dead stores.
  __m256d acc[NV];
  for (int v = 0; v < NV; ++v) acc[v] = _mm256_setzero_pd();
  __m256d accr = _mm256_setzero_pd();
  for (size_t kk = 0; kk < k; ++kk) {
    if (kk + kPrefetchRows < k) {
      const char* next =
          reinterpret_cast<const char*>(b + (kk + kPrefetchRows) * b_stride);
      for (int off = 0; off <= kPrefetchSpan; off += 64) {
        _mm_prefetch(next + off, _MM_HINT_T0);
      }
    }
    const __m256d vv = _mm256_set1_pd(a_row[kk]);
    const double* row = b + kk * b_stride;
    for (int v = 0; v < NV; ++v) {
      acc[v] = _mm256_fmadd_pd(vv, _mm256_loadu_pd(row + 4 * v), acc[v]);
    }
    if constexpr (kHasRem) {
      accr = _mm256_fmadd_pd(vv, _mm256_loadu_pd(row + 4 * NV), accr);
    }
  }
  for (int v = 0; v < NV; ++v) {
    _mm256_storeu_pd(c + 4 * v,
                     _mm256_add_pd(_mm256_loadu_pd(c + 4 * v), acc[v]));
  }
  if constexpr (kHasRem) {
    const __m256i mask = TailMask(rem);
    _mm256_maskstore_pd(
        c + 4 * NV, mask,
        _mm256_add_pd(_mm256_maskload_pd(c + 4 * NV, mask), accr));
  }
  if constexpr (!kHasRem) (void)rem;
}

// Same register-stripe shape for the sparse product, with the CSR entries
// innermost. The entry indices jump around the broadcast matrix, so every
// gathered row is a likely cache miss the hardware prefetcher cannot
// predict: prefetch the FULL stripe width of the row kPrefetchAhead
// entries out (~a cache-line per 8 doubles), far enough to cover L3
// latency at ~10 cycles of FMA work per entry.
template <int NV, bool kHasRem>
SPCA_STRIPE_INLINE void SparseGemvStripe(
    const SparseEntry* SPCA_RESTRICT entries, size_t nnz,
    const double* SPCA_RESTRICT b, size_t b_stride,
    double* SPCA_RESTRICT out, size_t rem) {
  static_assert(NV >= 1 && NV <= 12, "more than 12 vectors cannot stay "
                                     "register-resident");
  constexpr size_t kPrefetchAhead = 6;
  constexpr int kPrefetchSpan = NV * 32 + (kHasRem ? 32 : 0);
  // Zero-init + fold-in-at-store, for the same register-promotion reason
  // as RowGemmStripe. The tail vector is likewise a plain over-reading
  // load (tail-padding contract): a gathered row is any row of b
  // including the last, so without the padding every iteration would
  // need a masked load — there is no "last iteration" to peel.
  __m256d acc[NV];
  for (int v = 0; v < NV; ++v) acc[v] = _mm256_setzero_pd();
  __m256d accr = _mm256_setzero_pd();
  for (size_t k = 0; k < nnz; ++k) {
    if (k + kPrefetchAhead < nnz) {
      const char* next = reinterpret_cast<const char*>(
          b + entries[k + kPrefetchAhead].index * b_stride);
      for (int off = 0; off <= kPrefetchSpan; off += 64) {
        _mm_prefetch(next + off, _MM_HINT_T0);
      }
    }
    const __m256d vv = _mm256_set1_pd(entries[k].value);
    const double* row = b + entries[k].index * b_stride;
    for (int v = 0; v < NV; ++v) {
      acc[v] = _mm256_fmadd_pd(vv, _mm256_loadu_pd(row + 4 * v), acc[v]);
    }
    if constexpr (kHasRem) {
      accr = _mm256_fmadd_pd(vv, _mm256_loadu_pd(row + 4 * NV), accr);
    }
  }
  for (int v = 0; v < NV; ++v) {
    _mm256_storeu_pd(out + 4 * v,
                     _mm256_add_pd(_mm256_loadu_pd(out + 4 * v), acc[v]));
  }
  if constexpr (kHasRem) {
    const __m256i mask = TailMask(rem);
    _mm256_maskstore_pd(
        out + 4 * NV, mask,
        _mm256_add_pd(_mm256_maskload_pd(out + 4 * NV, mask), accr));
  }
  if constexpr (!kHasRem) (void)rem;
}

// A 4-column stripe with the k loop unrolled into four independent
// accumulator chains. The wide stripes above have one chain per column
// vector, so a lone 4-column stripe over a long k would serialize on FMA
// latency (4 cycles per iteration for 1 vector of work); four chains
// over the same columns restore ~1 iteration/cycle. Used for the 4-15
// column leftovers after the 48/16-wide loops. Reassociates the k sum —
// tolerance tier.
SPCA_STRIPE_INLINE void RowGemmStripeNarrow(const double* SPCA_RESTRICT a_row,
                                            size_t k,
                                            const double* SPCA_RESTRICT b,
                                            size_t b_stride,
                                            double* SPCA_RESTRICT c) {
  __m256d a0 = _mm256_setzero_pd();
  __m256d a1 = _mm256_setzero_pd();
  __m256d a2 = _mm256_setzero_pd();
  __m256d a3 = _mm256_setzero_pd();
  size_t kk = 0;
  for (; kk + 4 <= k; kk += 4) {
    const double* row = b + kk * b_stride;
    a0 = _mm256_fmadd_pd(_mm256_set1_pd(a_row[kk]), _mm256_loadu_pd(row), a0);
    a1 = _mm256_fmadd_pd(_mm256_set1_pd(a_row[kk + 1]),
                         _mm256_loadu_pd(row + b_stride), a1);
    a2 = _mm256_fmadd_pd(_mm256_set1_pd(a_row[kk + 2]),
                         _mm256_loadu_pd(row + 2 * b_stride), a2);
    a3 = _mm256_fmadd_pd(_mm256_set1_pd(a_row[kk + 3]),
                         _mm256_loadu_pd(row + 3 * b_stride), a3);
  }
  for (; kk < k; ++kk) {
    a0 = _mm256_fmadd_pd(_mm256_set1_pd(a_row[kk]),
                         _mm256_loadu_pd(b + kk * b_stride), a0);
  }
  const __m256d sum = _mm256_add_pd(_mm256_add_pd(a0, a1),
                                    _mm256_add_pd(a2, a3));
  _mm256_storeu_pd(c, _mm256_add_pd(_mm256_loadu_pd(c), sum));
}

// Narrow sparse counterpart: four gathered rows in flight per iteration
// (memory-level parallelism for the random accesses) plus prefetch.
SPCA_STRIPE_INLINE void SparseGemvStripeNarrow(
    const SparseEntry* SPCA_RESTRICT entries, size_t nnz,
    const double* SPCA_RESTRICT b, size_t b_stride,
    double* SPCA_RESTRICT out) {
  constexpr size_t kPrefetchAhead = 8;
  __m256d a0 = _mm256_setzero_pd();
  __m256d a1 = _mm256_setzero_pd();
  __m256d a2 = _mm256_setzero_pd();
  __m256d a3 = _mm256_setzero_pd();
  size_t k = 0;
  for (; k + 4 <= nnz; k += 4) {
    if (k + kPrefetchAhead + 4 <= nnz) {
      for (size_t p = 0; p < 4; ++p) {
        _mm_prefetch(reinterpret_cast<const char*>(
                         b + entries[k + kPrefetchAhead + p].index * b_stride),
                     _MM_HINT_T0);
      }
    }
    a0 = _mm256_fmadd_pd(_mm256_set1_pd(entries[k].value),
                         _mm256_loadu_pd(b + entries[k].index * b_stride), a0);
    a1 = _mm256_fmadd_pd(
        _mm256_set1_pd(entries[k + 1].value),
        _mm256_loadu_pd(b + entries[k + 1].index * b_stride), a1);
    a2 = _mm256_fmadd_pd(
        _mm256_set1_pd(entries[k + 2].value),
        _mm256_loadu_pd(b + entries[k + 2].index * b_stride), a2);
    a3 = _mm256_fmadd_pd(
        _mm256_set1_pd(entries[k + 3].value),
        _mm256_loadu_pd(b + entries[k + 3].index * b_stride), a3);
  }
  for (; k < nnz; ++k) {
    a0 = _mm256_fmadd_pd(_mm256_set1_pd(entries[k].value),
                         _mm256_loadu_pd(b + entries[k].index * b_stride), a0);
  }
  const __m256d sum = _mm256_add_pd(_mm256_add_pd(a0, a1),
                                    _mm256_add_pd(a2, a3));
  _mm256_storeu_pd(out, _mm256_add_pd(_mm256_loadu_pd(out), sum));
}

// The common stripe plan for both products: full 48-column stripes, then
// 16- and 4-column stripes, with the final stripe widened to absorb a
// 1-3 column remainder in its over-reading tail vector. The final
// stripe keeps the full 12-vector width, so the paper's d <= 51 shapes
// (d = 50 in every headline benchmark) are a SINGLE pass over b.
struct StripePlan {
  size_t prefix;    // columns handled by rem-free 48/16/4 stripes
  size_t final_nv;  // 12, 4, 1 (final stripe with tail), or 0 (none)
};

inline StripePlan PlanStripes(size_t full, size_t rem) {
  if (rem == 0) return {full, 0};
  const size_t final_nv = full >= 48 ? 12 : full >= 16 ? 4 : full >= 4 ? 1 : 0;
  return {full - 4 * final_nv, final_nv};
}

}  // namespace

void SparseRowGemv(const SparseEntry* entries, size_t nnz, const double* b,
                   size_t b_stride, size_t d, double* out) {
  const size_t rem = d % 4;
  const size_t full = d - rem;  // columns covered by whole vectors
  const StripePlan plan = PlanStripes(full, rem);
  size_t j = 0;
  for (; j + 48 <= plan.prefix; j += 48) {
    SparseGemvStripe<12, false>(entries, nnz, b + j, b_stride, out + j, 0);
  }
  for (; j + 16 <= plan.prefix; j += 16) {
    SparseGemvStripe<4, false>(entries, nnz, b + j, b_stride, out + j, 0);
  }
  for (; j + 4 <= plan.prefix; j += 4) {
    SparseGemvStripeNarrow(entries, nnz, b + j, b_stride, out + j);
  }
  switch (plan.final_nv) {
    case 12:
      SparseGemvStripe<12, true>(entries, nnz, b + j, b_stride, out + j, rem);
      break;
    case 4:
      SparseGemvStripe<4, true>(entries, nnz, b + j, b_stride, out + j, rem);
      break;
    case 1:
      SparseGemvStripe<1, true>(entries, nnz, b + j, b_stride, out + j, rem);
      break;
    default:
      break;
  }
  if (full == 0) {
    // d < 4: no whole vector at all. Two entry-unrolled accumulator
    // chains per column — a single chain would be FMA-latency-bound
    // through the gathered loads.
    for (; j < d; ++j) {
      double acc0 = 0.0;
      double acc1 = 0.0;
      size_t k = 0;
      for (; k + 2 <= nnz; k += 2) {
        acc0 = __builtin_fma(entries[k].value,
                             b[entries[k].index * b_stride + j], acc0);
        acc1 = __builtin_fma(entries[k + 1].value,
                             b[entries[k + 1].index * b_stride + j], acc1);
      }
      for (; k < nnz; ++k) {
        acc0 = __builtin_fma(entries[k].value,
                             b[entries[k].index * b_stride + j], acc0);
      }
      out[j] += acc0 + acc1;
    }
  }
}

void RowGemm(const double* a_row, size_t k, const double* b, size_t b_stride,
             size_t n, double* c_row) {
  // Register-blocked column stripes (widest first): each stripe of c
  // lives in ymm accumulators for the whole k sweep, so the only memory
  // traffic is the sequential read of b's columns for that stripe — b is
  // effectively streamed once regardless of k. The final (< 4 column)
  // remainder rides along as a masked lane of the last stripe.
  const size_t rem = n % 4;
  const size_t full = n - rem;
  const StripePlan plan = PlanStripes(full, rem);
  size_t j = 0;
  for (; j + 48 <= plan.prefix; j += 48) {
    RowGemmStripe<12, false>(a_row, k, b + j, b_stride, c_row + j, 0);
  }
  for (; j + 16 <= plan.prefix; j += 16) {
    RowGemmStripe<4, false>(a_row, k, b + j, b_stride, c_row + j, 0);
  }
  for (; j + 4 <= plan.prefix; j += 4) {
    RowGemmStripeNarrow(a_row, k, b + j, b_stride, c_row + j);
  }
  switch (plan.final_nv) {
    case 12:
      RowGemmStripe<12, true>(a_row, k, b + j, b_stride, c_row + j, rem);
      break;
    case 4:
      RowGemmStripe<4, true>(a_row, k, b + j, b_stride, c_row + j, rem);
      break;
    case 1:
      RowGemmStripe<1, true>(a_row, k, b + j, b_stride, c_row + j, rem);
      break;
    default:
      break;
  }
  if (full == 0) {
    // n < 4: no whole vector; 4 k-unrolled chains per column so the
    // reduction is not FMA-latency-bound.
    for (; j < n; ++j) {
      double acc0 = 0.0;
      double acc1 = 0.0;
      double acc2 = 0.0;
      double acc3 = 0.0;
      size_t kk = 0;
      for (; kk + 4 <= k; kk += 4) {
        acc0 = __builtin_fma(a_row[kk], b[kk * b_stride + j], acc0);
        acc1 = __builtin_fma(a_row[kk + 1], b[(kk + 1) * b_stride + j], acc1);
        acc2 = __builtin_fma(a_row[kk + 2], b[(kk + 2) * b_stride + j], acc2);
        acc3 = __builtin_fma(a_row[kk + 3], b[(kk + 3) * b_stride + j], acc3);
      }
      for (; kk < k; ++kk) {
        acc0 = __builtin_fma(a_row[kk], b[kk * b_stride + j], acc0);
      }
      c_row[j] += (acc0 + acc1) + (acc2 + acc3);
    }
  }
}

}  // namespace spca::linalg::kernels::avx2

#endif  // SPCA_KERNELS_HAVE_AVX2
