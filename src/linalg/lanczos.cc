#include "linalg/lanczos.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/rng.h"

namespace spca::linalg {

namespace {

// Removes from `v` its projections onto the first `count` columns of `basis`
// (two passes for numerical robustness).
void Reorthogonalize(const std::vector<DenseVector>& basis, size_t count,
                     DenseVector* v) {
  for (int pass = 0; pass < 2; ++pass) {
    for (size_t j = 0; j < count; ++j) {
      const double dot = basis[j].Dot(*v);
      v->AddScaled(-dot, basis[j]);
    }
  }
}

}  // namespace

StatusOr<SvdResult> LanczosSvd(const LinearOperator& op, size_t k,
                               size_t steps, uint64_t seed) {
  const size_t n = op.rows();
  const size_t m = op.cols();
  if (k == 0 || k > std::min(n, m)) {
    return Status::InvalidArgument("LanczosSvd: invalid rank k");
  }
  steps = std::min(steps, std::min(n, m));
  if (steps < k) {
    return Status::InvalidArgument("LanczosSvd: steps must be >= k");
  }

  // Golub–Kahan–Lanczos: build orthonormal bases {u_i} (dim n) and {v_i}
  // (dim m) with A*v_i = alpha_i*u_i + beta_{i-1}*u_{i-1}, etc., producing a
  // (steps x steps) lower bidiagonal projection.
  std::vector<DenseVector> us;
  std::vector<DenseVector> vs;
  std::vector<double> alphas;
  std::vector<double> betas;  // betas[i] couples step i to step i+1

  Rng rng(seed);
  DenseVector v(m);
  for (size_t i = 0; i < m; ++i) v[i] = rng.NextGaussian();
  v.Scale(1.0 / std::max(v.Norm2(), 1e-300));

  DenseVector u(n);
  size_t actual_steps = 0;
  for (size_t step = 0; step < steps; ++step) {
    // u = A*v - beta_{step-1} * u_{step-1}
    u = op.Apply(v);
    if (step > 0) u.AddScaled(-betas.back(), us.back());
    Reorthogonalize(us, us.size(), &u);
    const double alpha = u.Norm2();
    if (alpha < 1e-12) break;
    u.Scale(1.0 / alpha);

    us.push_back(u);
    vs.push_back(v);
    alphas.push_back(alpha);
    ++actual_steps;

    // v_next = A'*u - alpha * v
    DenseVector v_next = op.ApplyTranspose(u);
    v_next.AddScaled(-alpha, v);
    Reorthogonalize(vs, vs.size(), &v_next);
    const double beta = v_next.Norm2();
    if (beta < 1e-12) break;
    v_next.Scale(1.0 / beta);
    betas.push_back(beta);
    v = std::move(v_next);
  }
  if (actual_steps == 0) {
    return Status::FailedPrecondition("LanczosSvd: operator is zero");
  }
  betas.resize(actual_steps > 0 ? actual_steps - 1 : 0);

  // With this recurrence A*V_s = U_s*T where T is *upper* bidiagonal:
  // diagonal = alphas, superdiagonal = betas. SVD the small projection.
  DenseMatrix t(actual_steps, actual_steps);
  for (size_t i = 0; i < actual_steps; ++i) t(i, i) = alphas[i];
  for (size_t i = 0; i + 1 < actual_steps; ++i) t(i, i + 1) = betas[i];
  auto small = SvdJacobi(t);
  if (!small.ok()) return small.status();

  const size_t out_k = std::min(k, actual_steps);
  SvdResult result;
  result.singular_values = DenseVector(out_k);
  result.u = DenseMatrix(n, out_k);
  result.v = DenseMatrix(m, out_k);

  // A ≈ U_s * T * V_s'. T = P * S * Q' => left singular vectors
  // U = U_s * P, right singular vectors V = V_s * Q.
  for (size_t j = 0; j < out_k; ++j) {
    result.singular_values[j] = small.value().singular_values[j];
    for (size_t s = 0; s < actual_steps; ++s) {
      const double pj = small.value().u(s, j);
      if (pj != 0.0) {
        for (size_t i = 0; i < n; ++i) result.u(i, j) += pj * us[s][i];
      }
      const double qj = small.value().v(s, j);
      if (qj != 0.0) {
        for (size_t i = 0; i < m; ++i) result.v(i, j) += qj * vs[s][i];
      }
    }
  }
  return result;
}

}  // namespace spca::linalg
