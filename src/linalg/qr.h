#ifndef SPCA_LINALG_QR_H_
#define SPCA_LINALG_QR_H_

#include "common/status.h"
#include "linalg/dense_matrix.h"

namespace spca::linalg {

/// Thin QR decomposition A = Q * R for A (n x m), n >= m: Q is (n x m) with
/// orthonormal columns, R is (m x m) upper triangular.
struct QrResult {
  DenseMatrix q;
  DenseMatrix r;
};

/// Householder QR (thin). Fails if n < m.
StatusOr<QrResult> QrDecompose(const DenseMatrix& a);

/// In-place Gram–Schmidt orthonormalization of the *columns* of A (with
/// re-orthogonalization for stability). Returns the orthonormalized matrix.
/// Rank-deficient columns are replaced with zeros. Used for orthonormalizing
/// the principal-component basis C before computing reconstruction error.
DenseMatrix OrthonormalizeColumns(const DenseMatrix& a);

}  // namespace spca::linalg

#endif  // SPCA_LINALG_QR_H_
