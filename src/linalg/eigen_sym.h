#ifndef SPCA_LINALG_EIGEN_SYM_H_
#define SPCA_LINALG_EIGEN_SYM_H_

#include "common/status.h"
#include "linalg/dense_matrix.h"

namespace spca::linalg {

/// Result of a symmetric eigendecomposition: A = V * diag(values) * V'.
struct SymmetricEigenResult {
  /// Eigenvalues sorted in descending order.
  DenseVector values;
  /// Orthonormal eigenvectors as *columns*, in the same order as `values`.
  DenseMatrix vectors;
};

/// Eigendecomposition of a symmetric matrix. Dispatches between the two
/// implementations below: cyclic Jacobi for small matrices (most robust),
/// Householder tridiagonalization + implicit QL for larger ones (O(n^3)
/// with a much smaller constant than Jacobi's sweeps). Fails on
/// non-square input.
StatusOr<SymmetricEigenResult> SymmetricEigen(const DenseMatrix& a,
                                              int max_sweeps = 64);

/// Cyclic Jacobi eigendecomposition (exposed for tests/benchmarks).
StatusOr<SymmetricEigenResult> SymmetricEigenJacobi(const DenseMatrix& a,
                                                    int max_sweeps = 64);

/// Householder tridiagonalization followed by the implicit-shift QL
/// iteration (the classic tred2/tql2 pair). Exposed for tests/benchmarks.
StatusOr<SymmetricEigenResult> SymmetricEigenTridiagonal(
    const DenseMatrix& a);

}  // namespace spca::linalg

#endif  // SPCA_LINALG_EIGEN_SYM_H_
