#include "linalg/qr.h"

#include <cmath>
#include <vector>

namespace spca::linalg {

StatusOr<QrResult> QrDecompose(const DenseMatrix& a) {
  const size_t n = a.rows();
  const size_t m = a.cols();
  if (n < m) {
    return Status::InvalidArgument("QrDecompose requires rows >= cols");
  }

  // Householder vectors are stored below the diagonal of `work`; R on/above.
  DenseMatrix work = a;
  std::vector<double> betas(m, 0.0);

  for (size_t k = 0; k < m; ++k) {
    // Compute the Householder reflector for column k below the diagonal.
    double norm2 = 0.0;
    for (size_t i = k; i < n; ++i) norm2 += work(i, k) * work(i, k);
    const double norm = std::sqrt(norm2);
    if (norm == 0.0) {
      betas[k] = 0.0;
      continue;
    }
    const double alpha = (work(k, k) >= 0.0) ? -norm : norm;
    const double vkk = work(k, k) - alpha;
    // v = (0..0, vkk, work(k+1..n-1, k)); beta = 2 / (v'v)
    double vtv = vkk * vkk;
    for (size_t i = k + 1; i < n; ++i) vtv += work(i, k) * work(i, k);
    const double beta = (vtv == 0.0) ? 0.0 : 2.0 / vtv;
    betas[k] = beta;

    // Apply the reflector to the remaining columns: A -= beta * v (v'A).
    for (size_t j = k + 1; j < m; ++j) {
      double dot = vkk * work(k, j);
      for (size_t i = k + 1; i < n; ++i) dot += work(i, k) * work(i, j);
      const double scale = beta * dot;
      work(k, j) -= scale * vkk;
      for (size_t i = k + 1; i < n; ++i) work(i, j) -= scale * work(i, k);
    }
    work(k, k) = alpha;
    // Store v (normalized so v_k = 1) below the diagonal.
    if (vkk != 0.0) {
      for (size_t i = k + 1; i < n; ++i) work(i, k) /= vkk;
      betas[k] = beta * vkk * vkk;
    } else {
      betas[k] = 0.0;
    }
  }

  QrResult result;
  result.r = DenseMatrix(m, m);
  for (size_t i = 0; i < m; ++i) {
    for (size_t j = i; j < m; ++j) result.r(i, j) = work(i, j);
  }

  // Form thin Q by applying the reflectors to the first m columns of I.
  result.q = DenseMatrix(n, m);
  for (size_t j = 0; j < m; ++j) result.q(j, j) = 1.0;
  for (size_t k = m; k-- > 0;) {
    if (betas[k] == 0.0) continue;
    for (size_t j = 0; j < m; ++j) {
      double dot = result.q(k, j);
      for (size_t i = k + 1; i < n; ++i) dot += work(i, k) * result.q(i, j);
      const double scale = betas[k] * dot;
      result.q(k, j) -= scale;
      for (size_t i = k + 1; i < n; ++i) {
        result.q(i, j) -= scale * work(i, k);
      }
    }
  }
  return result;
}

DenseMatrix OrthonormalizeColumns(const DenseMatrix& a) {
  const size_t n = a.rows();
  const size_t m = a.cols();
  DenseMatrix q = a;
  for (size_t j = 0; j < m; ++j) {
    // Two passes of modified Gram–Schmidt for numerical robustness.
    for (int pass = 0; pass < 2; ++pass) {
      for (size_t k = 0; k < j; ++k) {
        double dot = 0.0;
        for (size_t i = 0; i < n; ++i) dot += q(i, k) * q(i, j);
        for (size_t i = 0; i < n; ++i) q(i, j) -= dot * q(i, k);
      }
    }
    double norm = 0.0;
    for (size_t i = 0; i < n; ++i) norm += q(i, j) * q(i, j);
    norm = std::sqrt(norm);
    if (norm < 1e-12) {
      for (size_t i = 0; i < n; ++i) q(i, j) = 0.0;
    } else {
      for (size_t i = 0; i < n; ++i) q(i, j) /= norm;
    }
  }
  return q;
}

}  // namespace spca::linalg
