#include "linalg/dense_matrix.h"

#include <cmath>

#include "common/rng.h"

namespace spca::linalg {

void DenseVector::Add(const DenseVector& other) {
  SPCA_CHECK_EQ(size(), other.size());
  for (size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
}

void DenseVector::Subtract(const DenseVector& other) {
  SPCA_CHECK_EQ(size(), other.size());
  for (size_t i = 0; i < data_.size(); ++i) data_[i] -= other.data_[i];
}

void DenseVector::AddScaled(double alpha, const DenseVector& other) {
  SPCA_CHECK_EQ(size(), other.size());
  for (size_t i = 0; i < data_.size(); ++i) data_[i] += alpha * other.data_[i];
}

void DenseVector::Scale(double alpha) {
  for (auto& v : data_) v *= alpha;
}

void DenseVector::SetZero() {
  std::fill(data_.begin(), data_.end(), 0.0);
}

double DenseVector::Dot(const DenseVector& other) const {
  SPCA_CHECK_EQ(size(), other.size());
  double sum = 0.0;
  for (size_t i = 0; i < data_.size(); ++i) sum += data_[i] * other.data_[i];
  return sum;
}

double DenseVector::SquaredNorm() const {
  double sum = 0.0;
  for (double v : data_) sum += v * v;
  return sum;
}

double DenseVector::Norm2() const { return std::sqrt(SquaredNorm()); }

double DenseVector::Norm1() const {
  double sum = 0.0;
  for (double v : data_) sum += std::fabs(v);
  return sum;
}

DenseMatrix DenseMatrix::Identity(size_t n) {
  DenseMatrix m(n, n);
  for (size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

DenseMatrix DenseMatrix::GaussianRandom(size_t rows, size_t cols, Rng* rng,
                                        double stddev) {
  DenseMatrix m(rows, cols);
  for (auto& v : m.data_) v = rng->NextGaussian(0.0, stddev);
  return m;
}

void DenseMatrix::Add(const DenseMatrix& other) {
  SPCA_CHECK_EQ(rows_, other.rows_);
  SPCA_CHECK_EQ(cols_, other.cols_);
  for (size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
}

void DenseMatrix::Subtract(const DenseMatrix& other) {
  SPCA_CHECK_EQ(rows_, other.rows_);
  SPCA_CHECK_EQ(cols_, other.cols_);
  for (size_t i = 0; i < data_.size(); ++i) data_[i] -= other.data_[i];
}

void DenseMatrix::AddScaled(double alpha, const DenseMatrix& other) {
  SPCA_CHECK_EQ(rows_, other.rows_);
  SPCA_CHECK_EQ(cols_, other.cols_);
  for (size_t i = 0; i < data_.size(); ++i) data_[i] += alpha * other.data_[i];
}

void DenseMatrix::Scale(double alpha) {
  for (auto& v : data_) v *= alpha;
}

void DenseMatrix::AddScaledIdentity(double alpha) {
  SPCA_CHECK_EQ(rows_, cols_);
  for (size_t i = 0; i < rows_; ++i) data_[i * cols_ + i] += alpha;
}

void DenseMatrix::SetZero() {
  std::fill(data_.begin(), data_.end(), 0.0);
}

DenseMatrix DenseMatrix::Transpose() const {
  DenseMatrix t(cols_, rows_);
  for (size_t i = 0; i < rows_; ++i) {
    for (size_t j = 0; j < cols_; ++j) {
      t(j, i) = (*this)(i, j);
    }
  }
  return t;
}

double DenseMatrix::Trace() const {
  SPCA_CHECK_EQ(rows_, cols_);
  double sum = 0.0;
  for (size_t i = 0; i < rows_; ++i) sum += data_[i * cols_ + i];
  return sum;
}

double DenseMatrix::FrobeniusNorm2() const {
  double sum = 0.0;
  for (double v : data_) sum += v * v;
  return sum;
}

double DenseMatrix::EntrywiseNorm1() const {
  double sum = 0.0;
  for (double v : data_) sum += std::fabs(v);
  return sum;
}

DenseVector DenseMatrix::RowVector(size_t i) const {
  SPCA_CHECK_LT(i, rows_);
  DenseVector v(cols_);
  for (size_t j = 0; j < cols_; ++j) v[j] = (*this)(i, j);
  return v;
}

DenseVector DenseMatrix::ColVector(size_t j) const {
  SPCA_CHECK_LT(j, cols_);
  DenseVector v(rows_);
  for (size_t i = 0; i < rows_; ++i) v[i] = (*this)(i, j);
  return v;
}

double DenseMatrix::MaxAbsDiff(const DenseMatrix& other) const {
  SPCA_CHECK_EQ(rows_, other.rows_);
  SPCA_CHECK_EQ(cols_, other.cols_);
  double max_diff = 0.0;
  for (size_t i = 0; i < data_.size(); ++i) {
    max_diff = std::max(max_diff, std::fabs(data_[i] - other.data_[i]));
  }
  return max_diff;
}

}  // namespace spca::linalg
