#ifndef SPCA_LINALG_LANCZOS_H_
#define SPCA_LINALG_LANCZOS_H_

#include <cstdint>

#include "common/status.h"
#include "linalg/dense_matrix.h"
#include "linalg/svd.h"

namespace spca::linalg {

/// Abstract matrix-free linear operator: all a Lanczos solver needs is
/// matrix-vector products with A and A'. Implementations include the
/// implicitly mean-centered sparse matrix used by the SVD-Lanczos baseline
/// (the point of §2.2: explicit centering would destroy sparsity, so the
/// operator propagates the mean instead).
class LinearOperator {
 public:
  virtual ~LinearOperator() = default;

  virtual size_t rows() const = 0;
  virtual size_t cols() const = 0;

  /// y = A * x; x has cols() elements, result has rows().
  virtual DenseVector Apply(const DenseVector& x) const = 0;
  /// y = A' * x; x has rows() elements, result has cols().
  virtual DenseVector ApplyTranspose(const DenseVector& x) const = 0;
};

/// Golub–Kahan–Lanczos bidiagonalization with full reorthogonalization,
/// followed by an SVD of the small bidiagonal matrix. Returns the top-k
/// singular triplets of the operator. `steps` controls the Krylov subspace
/// size (steps >= k; more steps = better accuracy). Deterministic given
/// `seed` (which seeds the start vector).
StatusOr<SvdResult> LanczosSvd(const LinearOperator& op, size_t k,
                               size_t steps, uint64_t seed);

}  // namespace spca::linalg

#endif  // SPCA_LINALG_LANCZOS_H_
