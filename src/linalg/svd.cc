#include "linalg/svd.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "linalg/eigen_sym.h"
#include "linalg/ops.h"

namespace spca::linalg {

StatusOr<BidiagonalizeResult> Bidiagonalize(const DenseMatrix& a) {
  const size_t n = a.rows();
  const size_t m = a.cols();
  if (n < m) {
    return Status::InvalidArgument("Bidiagonalize requires rows >= cols");
  }

  DenseMatrix work = a;
  DenseMatrix u = DenseMatrix::Identity(n);  // full for simplicity; thinned below
  DenseMatrix v = DenseMatrix::Identity(m);

  auto apply_left_householder = [&](size_t k) {
    // Reflector zeroing work(k+1.., k); applied to work and accumulated in U.
    double norm2 = 0.0;
    for (size_t i = k; i < n; ++i) norm2 += work(i, k) * work(i, k);
    const double norm = std::sqrt(norm2);
    if (norm == 0.0) return;
    const double alpha = (work(k, k) >= 0.0) ? -norm : norm;
    std::vector<double> hv(n, 0.0);
    hv[k] = work(k, k) - alpha;
    for (size_t i = k + 1; i < n; ++i) hv[i] = work(i, k);
    double vtv = 0.0;
    for (size_t i = k; i < n; ++i) vtv += hv[i] * hv[i];
    if (vtv == 0.0) return;
    const double beta = 2.0 / vtv;
    for (size_t j = k; j < m; ++j) {
      double dot = 0.0;
      for (size_t i = k; i < n; ++i) dot += hv[i] * work(i, j);
      const double scale = beta * dot;
      for (size_t i = k; i < n; ++i) work(i, j) -= scale * hv[i];
    }
    // U = U * H (H symmetric), i.e. each row of U gets reflected.
    for (size_t r = 0; r < n; ++r) {
      double dot = 0.0;
      for (size_t i = k; i < n; ++i) dot += u(r, i) * hv[i];
      const double scale = beta * dot;
      for (size_t i = k; i < n; ++i) u(r, i) -= scale * hv[i];
    }
  };

  auto apply_right_householder = [&](size_t k) {
    // Reflector zeroing work(k, k+2..); applied from the right, accumulated
    // in V.
    const size_t start = k + 1;
    double norm2 = 0.0;
    for (size_t j = start; j < m; ++j) norm2 += work(k, j) * work(k, j);
    const double norm = std::sqrt(norm2);
    if (norm == 0.0) return;
    const double alpha = (work(k, start) >= 0.0) ? -norm : norm;
    std::vector<double> hv(m, 0.0);
    hv[start] = work(k, start) - alpha;
    for (size_t j = start + 1; j < m; ++j) hv[j] = work(k, j);
    double vtv = 0.0;
    for (size_t j = start; j < m; ++j) vtv += hv[j] * hv[j];
    if (vtv == 0.0) return;
    const double beta = 2.0 / vtv;
    for (size_t i = k; i < n; ++i) {
      double dot = 0.0;
      for (size_t j = start; j < m; ++j) dot += work(i, j) * hv[j];
      const double scale = beta * dot;
      for (size_t j = start; j < m; ++j) work(i, j) -= scale * hv[j];
    }
    for (size_t r = 0; r < m; ++r) {
      double dot = 0.0;
      for (size_t j = start; j < m; ++j) dot += v(r, j) * hv[j];
      const double scale = beta * dot;
      for (size_t j = start; j < m; ++j) v(r, j) -= scale * hv[j];
    }
  };

  for (size_t k = 0; k < m; ++k) {
    apply_left_householder(k);
    if (k + 2 < m + 1 && k + 1 < m) apply_right_householder(k);
  }

  BidiagonalizeResult result;
  result.diag = DenseVector(m);
  result.superdiag = DenseVector(m > 0 ? m - 1 : 0);
  for (size_t i = 0; i < m; ++i) result.diag[i] = work(i, i);
  for (size_t i = 0; i + 1 < m; ++i) result.superdiag[i] = work(i, i + 1);
  // Thin U: first m columns.
  result.u = DenseMatrix(n, m);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < m; ++j) result.u(i, j) = u(i, j);
  }
  result.v = std::move(v);
  return result;
}

DenseMatrix BidiagonalToDense(const DenseVector& diag,
                              const DenseVector& superdiag) {
  const size_t m = diag.size();
  DenseMatrix b(m, m);
  for (size_t i = 0; i < m; ++i) b(i, i) = diag[i];
  for (size_t i = 0; i + 1 < m; ++i) b(i, i + 1) = superdiag[i];
  return b;
}

StatusOr<SvdResult> SvdJacobi(const DenseMatrix& a, int max_sweeps) {
  const size_t n = a.rows();
  const size_t m = a.cols();
  if (n < m) {
    return Status::InvalidArgument("SvdJacobi requires rows >= cols");
  }
  DenseMatrix u = a;  // becomes U * diag(s)
  DenseMatrix v = DenseMatrix::Identity(m);

  // One-sided Jacobi: orthogonalize every pair of columns of U.
  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    bool converged = true;
    for (size_t p = 0; p < m; ++p) {
      for (size_t q = p + 1; q < m; ++q) {
        double app = 0.0, aqq = 0.0, apq = 0.0;
        for (size_t i = 0; i < n; ++i) {
          app += u(i, p) * u(i, p);
          aqq += u(i, q) * u(i, q);
          apq += u(i, p) * u(i, q);
        }
        if (std::fabs(apq) <= 1e-15 * std::sqrt(app * aqq) ||
            (app == 0.0 && aqq == 0.0)) {
          continue;
        }
        converged = false;
        const double tau = (aqq - app) / (2.0 * apq);
        double t;
        if (tau >= 0.0) {
          t = 1.0 / (tau + std::sqrt(1.0 + tau * tau));
        } else {
          t = -1.0 / (-tau + std::sqrt(1.0 + tau * tau));
        }
        const double c = 1.0 / std::sqrt(1.0 + t * t);
        const double s = t * c;
        for (size_t i = 0; i < n; ++i) {
          const double uip = u(i, p);
          const double uiq = u(i, q);
          u(i, p) = c * uip - s * uiq;
          u(i, q) = s * uip + c * uiq;
        }
        for (size_t i = 0; i < m; ++i) {
          const double vip = v(i, p);
          const double viq = v(i, q);
          v(i, p) = c * vip - s * viq;
          v(i, q) = s * vip + c * viq;
        }
      }
    }
    if (converged) break;
  }

  // Extract singular values (column norms) and normalize U.
  std::vector<double> sigma(m);
  for (size_t j = 0; j < m; ++j) {
    double norm2 = 0.0;
    for (size_t i = 0; i < n; ++i) norm2 += u(i, j) * u(i, j);
    sigma[j] = std::sqrt(norm2);
  }
  std::vector<size_t> order(m);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&sigma](size_t i, size_t j) { return sigma[i] > sigma[j]; });

  SvdResult result;
  result.u = DenseMatrix(n, m);
  result.v = DenseMatrix(m, m);
  result.singular_values = DenseVector(m);
  for (size_t jj = 0; jj < m; ++jj) {
    const size_t j = order[jj];
    result.singular_values[jj] = sigma[j];
    const double inv = (sigma[j] > 1e-300) ? 1.0 / sigma[j] : 0.0;
    for (size_t i = 0; i < n; ++i) result.u(i, jj) = u(i, j) * inv;
    for (size_t i = 0; i < m; ++i) result.v(i, jj) = v(i, j);
  }
  return result;
}

StatusOr<SvdResult> Svd(const DenseMatrix& a) {
  if (a.rows() >= a.cols()) return SvdJacobi(a);
  // Wide matrix: SVD of A' and swap factors.
  auto t = SvdJacobi(a.Transpose());
  if (!t.ok()) return t.status();
  SvdResult result;
  result.u = std::move(t.value().v);
  result.v = std::move(t.value().u);
  result.singular_values = std::move(t.value().singular_values);
  return result;
}

StatusOr<SvdResult> SvdWideViaGram(const DenseMatrix& a,
                                   double rank_tolerance) {
  const size_t k = a.rows();
  // Gram matrix G = A * A' (k x k), eigendecompose, back out V.
  DenseMatrix gram = MultiplyTranspose(a, a);
  auto eigen = SymmetricEigen(gram);
  if (!eigen.ok()) return eigen.status();

  SvdResult result;
  result.singular_values = DenseVector(k);
  result.u = DenseMatrix(k, k);
  double max_sigma = 0.0;
  for (size_t j = 0; j < k; ++j) {
    const double lambda = std::max(0.0, eigen.value().values[j]);
    result.singular_values[j] = std::sqrt(lambda);
    max_sigma = std::max(max_sigma, result.singular_values[j]);
    for (size_t i = 0; i < k; ++i) {
      result.u(i, j) = eigen.value().vectors(i, j);
    }
  }
  // V = A' * U * diag(1/sigma), columns for negligible sigma zeroed.
  DenseMatrix atu = TransposeMultiply(a, result.u);  // D x k
  result.v = DenseMatrix(a.cols(), k);
  for (size_t j = 0; j < k; ++j) {
    const double sigma = result.singular_values[j];
    const double inv =
        (sigma > rank_tolerance * std::max(1.0, max_sigma)) ? 1.0 / sigma : 0.0;
    for (size_t i = 0; i < a.cols(); ++i) result.v(i, j) = atu(i, j) * inv;
  }
  return result;
}

}  // namespace spca::linalg
