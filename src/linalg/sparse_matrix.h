#ifndef SPCA_LINALG_SPARSE_MATRIX_H_
#define SPCA_LINALG_SPARSE_MATRIX_H_

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "common/check.h"
#include "linalg/dense_matrix.h"

namespace spca::linalg {

/// One non-zero entry of a sparse row/vector.
struct SparseEntry {
  uint32_t index;
  double value;

  friend bool operator==(const SparseEntry& a, const SparseEntry& b) {
    return a.index == b.index && a.value == b.value;
  }
};

/// Immutable view over one row of a SparseMatrix (or a standalone sparse
/// vector): a span of (index, value) pairs sorted by index.
class SparseRowView {
 public:
  SparseRowView() = default;
  SparseRowView(const SparseEntry* entries, size_t count, size_t dim)
      : entries_(entries, count), dim_(dim) {}

  size_t nnz() const { return entries_.size(); }
  /// The logical dimensionality D of the row.
  size_t dim() const { return dim_; }
  const SparseEntry* begin() const { return entries_.data(); }
  const SparseEntry* end() const { return entries_.data() + entries_.size(); }
  const SparseEntry& operator[](size_t k) const { return entries_[k]; }

  /// Dot product with a dense vector of size dim().
  double Dot(const DenseVector& dense) const;
  /// Dot product with column j of a dense matrix with dim() rows.
  double DotColumn(const DenseMatrix& dense, size_t j) const;
  /// Sum of squared values of the stored entries.
  double SquaredNorm() const;
  /// Sum of the stored values.
  double Sum() const;

 private:
  std::span<const SparseEntry> entries_;
  size_t dim_ = 0;
};

/// An owned sparse vector (sorted by index). Used for sparse driver-side
/// vectors such as C' * Y_i' in the ss3 job.
class SparseVector {
 public:
  SparseVector() = default;
  /// Entries must be sorted by index and within [0, dim).
  SparseVector(std::vector<SparseEntry> entries, size_t dim);

  /// Builds from a dense vector keeping entries with |value| > tolerance.
  static SparseVector FromDense(const DenseVector& dense,
                                double tolerance = 0.0);

  size_t nnz() const { return entries_.size(); }
  size_t dim() const { return dim_; }
  SparseRowView View() const {
    return SparseRowView(entries_.data(), entries_.size(), dim_);
  }
  const std::vector<SparseEntry>& entries() const { return entries_; }

 private:
  std::vector<SparseEntry> entries_;
  size_t dim_ = 0;
};

/// Compressed-sparse-row matrix of doubles. This is the storage format for
/// the large input matrix Y: the workloads in the paper (Tweets, Bio-Text)
/// are extremely sparse binary bag-of-words matrices.
class SparseMatrix {
 public:
  SparseMatrix() : rows_(0), cols_(0) { row_ptr_.push_back(0); }
  /// Empty matrix with the given shape (no non-zeros yet; use the builder
  /// interface AppendRow to fill rows in order).
  SparseMatrix(size_t rows, size_t cols);

  /// Appends the next row. Entries must be sorted by index, in [0, cols).
  /// Rows are appended in order; `row` must equal the number of rows appended
  /// so far (this guards against out-of-order construction).
  void AppendRow(size_t row, std::span<const SparseEntry> entries);

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  size_t nnz() const { return entries_.size(); }
  /// Fraction of entries that are non-zero.
  double Density() const {
    if (rows_ == 0 || cols_ == 0) return 0.0;
    return static_cast<double>(nnz()) /
           (static_cast<double>(rows_) * static_cast<double>(cols_));
  }
  /// Approximate in-memory footprint in bytes (CSR arrays).
  size_t ByteSize() const {
    return entries_.size() * sizeof(SparseEntry) +
           row_ptr_.size() * sizeof(uint64_t);
  }

  /// View of row i.
  SparseRowView Row(size_t i) const {
    SPCA_CHECK_LT(i, rows_);
    const uint64_t begin = row_ptr_[i];
    const uint64_t end = row_ptr_[i + 1];
    return SparseRowView(entries_.data() + begin, end - begin, cols_);
  }

  /// Converts to a dense matrix (only sensible for small matrices; tests).
  DenseMatrix ToDense() const;
  /// Builds a sparse matrix from a dense one, keeping |value| > tolerance.
  static SparseMatrix FromDense(const DenseMatrix& dense,
                                double tolerance = 0.0);

  /// Per-column mean of the matrix values (the paper's columnMean(Y) = Ym).
  DenseVector ColumnMeans() const;
  /// Square of the Frobenius norm of the raw (not mean-centered) matrix.
  double FrobeniusNorm2() const;

 private:
  size_t rows_;
  size_t cols_;
  size_t appended_rows_ = 0;       // rows filled so far via AppendRow
  std::vector<uint64_t> row_ptr_;  // size rows_ + 1
  std::vector<SparseEntry> entries_;
};

}  // namespace spca::linalg

#endif  // SPCA_LINALG_SPARSE_MATRIX_H_
