#include "linalg/solve.h"

#include <cmath>
#include <vector>

namespace spca::linalg {

StatusOr<DenseMatrix> CholeskyFactor(const DenseMatrix& a) {
  if (a.rows() != a.cols()) {
    return Status::InvalidArgument("Cholesky requires a square matrix");
  }
  const size_t n = a.rows();
  DenseMatrix l(n, n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j <= i; ++j) {
      double sum = a(i, j);
      for (size_t k = 0; k < j; ++k) sum -= l(i, k) * l(j, k);
      if (i == j) {
        if (sum <= 0.0) {
          return Status::FailedPrecondition(
              "matrix is not positive definite");
        }
        l(i, i) = std::sqrt(sum);
      } else {
        l(i, j) = sum / l(j, j);
      }
    }
  }
  return l;
}

StatusOr<DenseMatrix> SolveSpd(const DenseMatrix& a, const DenseMatrix& b) {
  if (a.rows() != b.rows()) {
    return Status::InvalidArgument("SolveSpd: shape mismatch");
  }
  auto factor = CholeskyFactor(a);
  if (!factor.ok()) return factor.status();
  const DenseMatrix& l = factor.value();
  const size_t n = a.rows();
  DenseMatrix x = b;
  // Forward substitution: L * Z = B.
  for (size_t col = 0; col < b.cols(); ++col) {
    for (size_t i = 0; i < n; ++i) {
      double sum = x(i, col);
      for (size_t k = 0; k < i; ++k) sum -= l(i, k) * x(k, col);
      x(i, col) = sum / l(i, i);
    }
    // Backward substitution: L' * X = Z.
    for (size_t ii = n; ii-- > 0;) {
      double sum = x(ii, col);
      for (size_t k = ii + 1; k < n; ++k) sum -= l(k, ii) * x(k, col);
      x(ii, col) = sum / l(ii, ii);
    }
  }
  return x;
}

StatusOr<DenseMatrix> SolveLu(const DenseMatrix& a, const DenseMatrix& b) {
  if (a.rows() != a.cols()) {
    return Status::InvalidArgument("SolveLu requires a square matrix");
  }
  if (a.rows() != b.rows()) {
    return Status::InvalidArgument("SolveLu: shape mismatch");
  }
  const size_t n = a.rows();
  DenseMatrix lu = a;
  std::vector<size_t> perm(n);
  for (size_t i = 0; i < n; ++i) perm[i] = i;

  for (size_t k = 0; k < n; ++k) {
    // Partial pivoting.
    size_t pivot = k;
    double max_abs = std::fabs(lu(k, k));
    for (size_t i = k + 1; i < n; ++i) {
      const double v = std::fabs(lu(i, k));
      if (v > max_abs) {
        max_abs = v;
        pivot = i;
      }
    }
    if (max_abs < 1e-300) {
      return Status::FailedPrecondition("matrix is numerically singular");
    }
    if (pivot != k) {
      for (size_t j = 0; j < n; ++j) std::swap(lu(k, j), lu(pivot, j));
      std::swap(perm[k], perm[pivot]);
    }
    for (size_t i = k + 1; i < n; ++i) {
      lu(i, k) /= lu(k, k);
      const double lik = lu(i, k);
      if (lik == 0.0) continue;
      for (size_t j = k + 1; j < n; ++j) lu(i, j) -= lik * lu(k, j);
    }
  }

  DenseMatrix x(n, b.cols());
  for (size_t col = 0; col < b.cols(); ++col) {
    // Apply permutation, then forward substitution with unit-lower L.
    for (size_t i = 0; i < n; ++i) {
      double sum = b(perm[i], col);
      for (size_t k = 0; k < i; ++k) sum -= lu(i, k) * x(k, col);
      x(i, col) = sum;
    }
    // Backward substitution with U.
    for (size_t ii = n; ii-- > 0;) {
      double sum = x(ii, col);
      for (size_t k = ii + 1; k < n; ++k) sum -= lu(ii, k) * x(k, col);
      x(ii, col) = sum / lu(ii, ii);
    }
  }
  return x;
}

StatusOr<DenseMatrix> Inverse(const DenseMatrix& a) {
  return SolveLu(a, DenseMatrix::Identity(a.rows()));
}

StatusOr<DenseMatrix> SolveRight(const DenseMatrix& b, const DenseMatrix& a) {
  if (a.rows() != a.cols() || b.cols() != a.rows()) {
    return Status::InvalidArgument("SolveRight: shape mismatch");
  }
  // X * A = B  <=>  A' * X' = B'.
  auto xt = SolveLu(a.Transpose(), b.Transpose());
  if (!xt.ok()) return xt.status();
  return xt.value().Transpose();
}

}  // namespace spca::linalg
