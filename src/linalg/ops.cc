#include "linalg/ops.h"

#include "linalg/kernels.h"

namespace spca::linalg {

// Every routine here is a thin loop over the contiguous-row micro-kernels
// in linalg/kernels.h. The kernels unroll only across output columns and
// keep reductions as single sequential chains, so each function produces
// bit-identical results to the scalar triple loops it replaced.

DenseMatrix Multiply(const DenseMatrix& a, const DenseMatrix& b) {
  SPCA_CHECK_EQ(a.cols(), b.rows());
  DenseMatrix c(a.rows(), b.cols());
  for (size_t i = 0; i < a.rows(); ++i) {
    kernels::RowGemm(a.RowPtr(i), a.cols(), b.data(), b.row_stride(),
                     b.cols(), c.RowPtr(i));
  }
  return c;
}

DenseMatrix TransposeMultiply(const DenseMatrix& a, const DenseMatrix& b) {
  SPCA_CHECK_EQ(a.rows(), b.rows());
  DenseMatrix c(a.cols(), b.cols());
  // sum_r (A_r)' * B_r: stream one row of each operand at a time (the
  // paper's Equation 2) as a rank-1 update of C.
  for (size_t r = 0; r < a.rows(); ++r) {
    kernels::Rank1Update(a.RowPtr(r), a.cols(), b.RowPtr(r), b.cols(),
                         c.data(), c.row_stride());
  }
  return c;
}

DenseMatrix MultiplyTranspose(const DenseMatrix& a, const DenseMatrix& b) {
  SPCA_CHECK_EQ(a.cols(), b.cols());
  DenseMatrix c(a.rows(), b.rows());
  for (size_t i = 0; i < a.rows(); ++i) {
    const double* a_row = a.RowPtr(i);
    double* c_row = c.RowPtr(i);
    for (size_t j = 0; j < b.rows(); ++j) {
      c_row[j] = kernels::DotRow(a_row, b.RowPtr(j), a.cols());
    }
  }
  return c;
}

DenseVector MultiplyVector(const DenseMatrix& a, const DenseVector& x) {
  SPCA_CHECK_EQ(a.cols(), x.size());
  DenseVector y(a.rows());
  for (size_t i = 0; i < a.rows(); ++i) {
    y[i] = kernels::DotRow(a.RowPtr(i), x.data(), a.cols());
  }
  return y;
}

DenseVector TransposeMultiplyVector(const DenseMatrix& a,
                                    const DenseVector& x) {
  SPCA_CHECK_EQ(a.rows(), x.size());
  DenseVector y(a.cols());
  for (size_t i = 0; i < a.rows(); ++i) {
    const double xi = x[i];
    if (xi == 0.0) continue;
    kernels::AxpyRow(xi, a.RowPtr(i), a.cols(), y.data());
  }
  return y;
}

DenseVector RowTimesMatrix(const DenseVector& row, const DenseMatrix& b) {
  SPCA_CHECK_EQ(row.size(), b.rows());
  DenseVector out(b.cols());
  kernels::RowGemm(row.data(), row.size(), b.data(), b.row_stride(), b.cols(),
                   out.data());
  return out;
}

DenseVector SparseRowTimesMatrix(const SparseRowView& row,
                                 const DenseMatrix& b) {
  SPCA_CHECK_EQ(row.dim(), b.rows());
  DenseVector out(b.cols());
  kernels::SparseRowGemv(row.begin(), row.nnz(), b.data(), b.row_stride(),
                         b.cols(), out.data());
  return out;
}

void AddOuterProduct(const DenseVector& a, const DenseVector& b,
                     DenseMatrix* out) {
  SPCA_CHECK_EQ(out->rows(), a.size());
  SPCA_CHECK_EQ(out->cols(), b.size());
  kernels::Rank1Update(a.data(), a.size(), b.data(), b.size(), out->data(),
                       out->row_stride());
}

void AddSparseOuterProduct(const SparseRowView& row, const DenseVector& b,
                           DenseMatrix* out) {
  SPCA_CHECK_EQ(out->rows(), row.dim());
  SPCA_CHECK_EQ(out->cols(), b.size());
  for (const auto& e : row) {
    kernels::AxpyRow(e.value, b.data(), b.size(), out->RowPtr(e.index));
  }
}

DenseMatrix SparseTimesDense(const SparseMatrix& y, const DenseMatrix& b) {
  SPCA_CHECK_EQ(y.cols(), b.rows());
  DenseMatrix c(y.rows(), b.cols());
  for (size_t i = 0; i < y.rows(); ++i) {
    const auto row = y.Row(i);
    kernels::SparseRowGemv(row.begin(), row.nnz(), b.data(), b.row_stride(),
                           b.cols(), c.RowPtr(i));
  }
  return c;
}

DenseMatrix MeanCenter(const DenseMatrix& a, const DenseVector& mean) {
  SPCA_CHECK_EQ(a.cols(), mean.size());
  DenseMatrix c(a.rows(), a.cols());
  for (size_t i = 0; i < a.rows(); ++i) {
    const double* a_row = a.RowPtr(i);
    double* c_row = c.RowPtr(i);
    for (size_t j = 0; j < a.cols(); ++j) c_row[j] = a_row[j] - mean[j];
  }
  return c;
}

DenseVector ColumnMeans(const DenseMatrix& a) {
  DenseVector means(a.cols());
  for (size_t i = 0; i < a.rows(); ++i) {
    kernels::AddRow(a.RowPtr(i), a.cols(), means.data());
  }
  if (a.rows() > 0) means.Scale(1.0 / static_cast<double>(a.rows()));
  return means;
}

}  // namespace spca::linalg
