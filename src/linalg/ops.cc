#include "linalg/ops.h"

namespace spca::linalg {

DenseMatrix Multiply(const DenseMatrix& a, const DenseMatrix& b) {
  SPCA_CHECK_EQ(a.cols(), b.rows());
  DenseMatrix c(a.rows(), b.cols());
  for (size_t i = 0; i < a.rows(); ++i) {
    for (size_t k = 0; k < a.cols(); ++k) {
      const double aik = a(i, k);
      if (aik == 0.0) continue;
      for (size_t j = 0; j < b.cols(); ++j) {
        c(i, j) += aik * b(k, j);
      }
    }
  }
  return c;
}

DenseMatrix TransposeMultiply(const DenseMatrix& a, const DenseMatrix& b) {
  SPCA_CHECK_EQ(a.rows(), b.rows());
  DenseMatrix c(a.cols(), b.cols());
  // sum_r (A_r)' * B_r: stream one row of each operand at a time.
  for (size_t r = 0; r < a.rows(); ++r) {
    for (size_t i = 0; i < a.cols(); ++i) {
      const double ari = a(r, i);
      if (ari == 0.0) continue;
      for (size_t j = 0; j < b.cols(); ++j) {
        c(i, j) += ari * b(r, j);
      }
    }
  }
  return c;
}

DenseMatrix MultiplyTranspose(const DenseMatrix& a, const DenseMatrix& b) {
  SPCA_CHECK_EQ(a.cols(), b.cols());
  DenseMatrix c(a.rows(), b.rows());
  for (size_t i = 0; i < a.rows(); ++i) {
    for (size_t j = 0; j < b.rows(); ++j) {
      double sum = 0.0;
      for (size_t k = 0; k < a.cols(); ++k) sum += a(i, k) * b(j, k);
      c(i, j) = sum;
    }
  }
  return c;
}

DenseVector MultiplyVector(const DenseMatrix& a, const DenseVector& x) {
  SPCA_CHECK_EQ(a.cols(), x.size());
  DenseVector y(a.rows());
  for (size_t i = 0; i < a.rows(); ++i) {
    double sum = 0.0;
    for (size_t j = 0; j < a.cols(); ++j) sum += a(i, j) * x[j];
    y[i] = sum;
  }
  return y;
}

DenseVector TransposeMultiplyVector(const DenseMatrix& a,
                                    const DenseVector& x) {
  SPCA_CHECK_EQ(a.rows(), x.size());
  DenseVector y(a.cols());
  for (size_t i = 0; i < a.rows(); ++i) {
    const double xi = x[i];
    if (xi == 0.0) continue;
    for (size_t j = 0; j < a.cols(); ++j) y[j] += a(i, j) * xi;
  }
  return y;
}

DenseVector RowTimesMatrix(const DenseVector& row, const DenseMatrix& b) {
  SPCA_CHECK_EQ(row.size(), b.rows());
  DenseVector out(b.cols());
  for (size_t k = 0; k < b.rows(); ++k) {
    const double v = row[k];
    if (v == 0.0) continue;
    for (size_t j = 0; j < b.cols(); ++j) out[j] += v * b(k, j);
  }
  return out;
}

DenseVector SparseRowTimesMatrix(const SparseRowView& row,
                                 const DenseMatrix& b) {
  SPCA_CHECK_EQ(row.dim(), b.rows());
  DenseVector out(b.cols());
  for (const auto& e : row) {
    for (size_t j = 0; j < b.cols(); ++j) out[j] += e.value * b(e.index, j);
  }
  return out;
}

void AddOuterProduct(const DenseVector& a, const DenseVector& b,
                     DenseMatrix* out) {
  SPCA_CHECK_EQ(out->rows(), a.size());
  SPCA_CHECK_EQ(out->cols(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    const double ai = a[i];
    if (ai == 0.0) continue;
    for (size_t j = 0; j < b.size(); ++j) (*out)(i, j) += ai * b[j];
  }
}

void AddSparseOuterProduct(const SparseRowView& row, const DenseVector& b,
                           DenseMatrix* out) {
  SPCA_CHECK_EQ(out->rows(), row.dim());
  SPCA_CHECK_EQ(out->cols(), b.size());
  for (const auto& e : row) {
    for (size_t j = 0; j < b.size(); ++j) {
      (*out)(e.index, j) += e.value * b[j];
    }
  }
}

DenseMatrix SparseTimesDense(const SparseMatrix& y, const DenseMatrix& b) {
  SPCA_CHECK_EQ(y.cols(), b.rows());
  DenseMatrix c(y.rows(), b.cols());
  for (size_t i = 0; i < y.rows(); ++i) {
    auto out = c.Row(i);
    for (const auto& e : y.Row(i)) {
      for (size_t j = 0; j < b.cols(); ++j) out[j] += e.value * b(e.index, j);
    }
  }
  return c;
}

DenseMatrix MeanCenter(const DenseMatrix& a, const DenseVector& mean) {
  SPCA_CHECK_EQ(a.cols(), mean.size());
  DenseMatrix c(a.rows(), a.cols());
  for (size_t i = 0; i < a.rows(); ++i) {
    for (size_t j = 0; j < a.cols(); ++j) c(i, j) = a(i, j) - mean[j];
  }
  return c;
}

DenseVector ColumnMeans(const DenseMatrix& a) {
  DenseVector means(a.cols());
  for (size_t i = 0; i < a.rows(); ++i) {
    for (size_t j = 0; j < a.cols(); ++j) means[j] += a(i, j);
  }
  if (a.rows() > 0) means.Scale(1.0 / static_cast<double>(a.rows()));
  return means;
}

}  // namespace spca::linalg
