// Principal "topics" of a document collection — the information-retrieval
// use case from the paper's introduction ("the principal components
// explain the principal terms in a set of documents").
//
// A sparse binary bag-of-words matrix (documents x words, Tweets-shaped)
// is fitted with sPCA; each principal component is then summarized by the
// words with the largest loadings, and a few documents are projected onto
// the topic space.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "core/spca.h"
#include "dist/engine.h"
#include "workload/synthetic.h"

namespace {

/// Deterministic fake vocabulary: word #i gets a readable label.
std::string WordLabel(size_t index) {
  static const char* kStems[] = {"data",  "cloud", "game",  "vote",
                                 "music", "train", "pizza", "solar",
                                 "robot", "coral"};
  return std::string(kStems[index % 10]) + "_" + std::to_string(index);
}

}  // namespace

int main() {
  using namespace spca;

  // Tweets-shaped corpus: 20,000 short documents over a 3,000-word
  // vocabulary with latent topics (see workload::BagOfWordsConfig).
  workload::BagOfWordsConfig corpus;
  corpus.rows = 20000;
  corpus.vocab = 3000;
  corpus.words_per_row = 9;
  corpus.num_topics = 12;
  corpus.seed = 2024;
  const dist::DistMatrix documents = dist::DistMatrix::FromSparse(
      workload::GenerateBagOfWords(corpus), /*num_partitions=*/8);
  std::printf("corpus: %zu documents, %zu words, density %.4f%%\n",
              documents.rows(), documents.cols(),
              100.0 * documents.sparse().Density());

  dist::Engine engine(dist::ClusterSpec{}, dist::EngineMode::kSpark);
  core::SpcaOptions options;
  options.num_components = 8;
  options.max_iterations = 15;
  options.target_accuracy_fraction = 0.98;
  auto result = core::Spca(&engine, options).Solve(documents);
  if (!result.ok()) {
    std::fprintf(stderr, "fit failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  const core::PcaModel& model = result.value().model;

  // Top-loading words per component = the "principal terms".
  const linalg::DenseMatrix basis = model.OrthonormalBasis();
  for (size_t topic = 0; topic < model.num_components(); ++topic) {
    std::vector<std::pair<double, size_t>> loadings;
    loadings.reserve(basis.rows());
    for (size_t word = 0; word < basis.rows(); ++word) {
      loadings.emplace_back(std::fabs(basis(word, topic)), word);
    }
    std::partial_sort(loadings.begin(), loadings.begin() + 6, loadings.end(),
                      std::greater<>());
    std::printf("component %zu:", topic);
    for (int k = 0; k < 6; ++k) {
      std::printf(" %s(%.2f)", WordLabel(loadings[k].second).c_str(),
                  loadings[k].first);
    }
    std::printf("\n");
  }

  // Project a few documents onto the topic space.
  const linalg::DenseMatrix projected = model.Transform(&engine, documents);
  std::printf("\nfirst three documents in topic space:\n");
  for (size_t doc = 0; doc < 3; ++doc) {
    std::printf("  doc %zu:", doc);
    for (size_t topic = 0; topic < model.num_components(); ++topic) {
      std::printf(" %+.2f", projected(doc, topic));
    }
    std::printf("\n");
  }

  std::printf("\nsimulated cluster time: %.1f s, intermediate data: %llu B\n",
              result.value().stats.simulated_seconds,
              static_cast<unsigned long long>(
                  result.value().stats.intermediate_bytes));
  return 0;
}
