// Dimensionality reduction of local image features — the paper's Images
// workload (SIFT descriptors, 128 dimensions) and its "PCA before
// k-means" motivation (Section 2.1).
//
// SIFT-like descriptors drawn from visual-word clusters are reduced from
// 128 to 16 dimensions with sPCA. The example then verifies that the
// reduction preserves the neighborhood structure clustering algorithms
// rely on: for a set of probe descriptors, the nearest neighbor found in
// the reduced space is compared against the one found in the full space.

#include <algorithm>
#include <cstdio>
#include <limits>
#include <vector>

#include "core/spca.h"
#include "dist/engine.h"
#include "workload/synthetic.h"

namespace {

/// Index of the row of `matrix` (excluding `probe`) closest to row `probe`
/// in Euclidean distance over the first `dims` columns.
size_t NearestNeighbor(const spca::linalg::DenseMatrix& matrix, size_t probe,
                       size_t dims) {
  size_t best = probe;
  double best_distance = std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < matrix.rows(); ++i) {
    if (i == probe) continue;
    double distance = 0.0;
    for (size_t j = 0; j < dims; ++j) {
      const double diff = matrix(i, j) - matrix(probe, j);
      distance += diff * diff;
    }
    if (distance < best_distance) {
      best_distance = distance;
      best = i;
    }
  }
  return best;
}

/// The `k` indices closest to row `probe` in the full-dimensional space.
std::vector<size_t> TopNeighbors(const spca::linalg::DenseMatrix& matrix,
                                 size_t probe, size_t dims, size_t k) {
  std::vector<std::pair<double, size_t>> distances;
  distances.reserve(matrix.rows());
  for (size_t i = 0; i < matrix.rows(); ++i) {
    if (i == probe) continue;
    double distance = 0.0;
    for (size_t j = 0; j < dims; ++j) {
      const double diff = matrix(i, j) - matrix(probe, j);
      distance += diff * diff;
    }
    distances.emplace_back(distance, i);
  }
  std::partial_sort(distances.begin(), distances.begin() + k,
                    distances.end());
  std::vector<size_t> neighbors;
  for (size_t rank = 0; rank < k; ++rank) {
    neighbors.push_back(distances[rank].second);
  }
  return neighbors;
}

}  // namespace

int main() {
  using namespace spca;

  workload::ImageFeaturesConfig features_config;
  features_config.rows = 8000;
  features_config.cols = 128;
  features_config.num_clusters = 40;
  features_config.seed = 9;
  linalg::DenseMatrix features =
      workload::GenerateImageFeatures(features_config);
  const dist::DistMatrix y =
      dist::DistMatrix::FromDense(features, /*num_partitions=*/8);
  std::printf("features: %zu descriptors x %zu dims (%.1f MB)\n", y.rows(),
              y.cols(), static_cast<double>(y.ByteSize()) / 1e6);

  dist::Engine engine(dist::ClusterSpec{}, dist::EngineMode::kSpark);
  core::SpcaOptions options;
  options.num_components = 16;
  options.max_iterations = 15;
  options.target_accuracy_fraction = 0.98;
  auto result = core::Spca(&engine, options).Solve(y);
  if (!result.ok()) {
    std::fprintf(stderr, "fit failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }

  const linalg::DenseMatrix reduced =
      result.value().model.Transform(&engine, y);
  std::printf("reduced to %zu x %zu (%.1fx smaller)\n", reduced.rows(),
              reduced.cols(),
              static_cast<double>(y.cols()) / reduced.cols());

  // Neighborhood preservation: is the nearest neighbor found in the
  // 16-dim space among the 20 true nearest neighbors in the full space?
  // (Exact-NN agreement is not expected: within a visual-word cluster the
  // closest descriptors are nearly equidistant.)
  const size_t kProbes = 60;
  size_t preserved = 0;
  for (size_t probe = 0; probe < kProbes; ++probe) {
    const size_t index = probe * 131;
    const auto full_top = TopNeighbors(features, index, 128, 20);
    const size_t low = NearestNeighbor(reduced, index, 16);
    for (const size_t candidate : full_top) {
      if (candidate == low) {
        ++preserved;
        break;
      }
    }
  }
  std::printf("reduced-space nearest neighbor is a full-space top-20 "
              "neighbor for %zu / %zu probes (%.0f%%)\n",
              preserved, kProbes, 100.0 * preserved / kProbes);

  std::printf("per-iteration accuracy:");
  for (const auto& it : result.value().trace) {
    std::printf(" %.1f%%", it.accuracy_percent);
  }
  std::printf("\nsimulated cluster time: %.1f s\n",
              result.value().stats.simulated_seconds);
  return 0;
}
