// Quickstart: fit sPCA on a small synthetic dataset and use the model.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
//
// The workflow is the library's canonical one:
//   1. wrap your data in a dist::DistMatrix (row-partitioned),
//   2. create a dist::Engine (the simulated Spark/MapReduce cluster),
//   3. run core::Spca::Fit,
//   4. use the PcaModel: components, Transform (dimensionality reduction),
//      and row reconstruction.

#include <cstdio>

#include "core/spca.h"
#include "dist/engine.h"
#include "workload/synthetic.h"

int main() {
  using namespace spca;

  // 1. Data: 2,000 points in 64 dimensions with a planted rank-4 structure
  //    (replace this with workload::LoadSparseBinary(...) or your own
  //    matrix for real data).
  workload::LowRankConfig data_config;
  data_config.rows = 2000;
  data_config.cols = 64;
  data_config.rank = 4;
  data_config.noise_stddev = 0.1;
  const dist::DistMatrix y = dist::DistMatrix::FromDense(
      workload::GenerateLowRank(data_config), /*num_partitions=*/8);

  // 2. Engine: an 8-node Spark-style cluster (the default ClusterSpec
  //    mirrors the paper's testbed).
  dist::Engine engine(dist::ClusterSpec{}, dist::EngineMode::kSpark);

  // 3. Fit: 4 principal components, up to 20 EM iterations, stopping once
  //    95% of the ideal accuracy is reached.
  core::SpcaOptions options;
  options.num_components = 4;
  options.max_iterations = 20;
  options.target_accuracy_fraction = 0.95;
  auto result = core::Spca(&engine, options).Solve(y);
  if (!result.ok()) {
    std::fprintf(stderr, "fit failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  const core::PcaModel& model = result.value().model;

  std::printf("fitted %zu components over %zu dims in %d iterations\n",
              model.num_components(), model.input_dim(),
              result.value().iterations_run);
  std::printf("noise variance ss = %.5f\n", model.noise_variance);
  for (const auto& it : result.value().trace) {
    std::printf("  iteration %d: error %.4f (%.1f%% of ideal accuracy)\n",
                it.iteration, it.error, it.accuracy_percent);
  }

  // 4a. Dimensionality reduction: X is 2000 x 4, ready for downstream
  //     algorithms (k-means and friends).
  const linalg::DenseMatrix x = model.Transform(&engine, y);
  std::printf("reduced matrix: %zu x %zu\n", x.rows(), x.cols());

  // Variance captured by each component (scree data).
  const linalg::DenseVector variances = model.ExplainedVariances(&engine, y);
  std::printf("explained variance per component:");
  for (size_t j = 0; j < variances.size(); ++j) {
    std::printf(" %.3f", variances[j]);
  }
  std::printf("\n");

  // 4b. Reconstruction of one row from its 4 coordinates.
  const linalg::DenseMatrix basis = model.OrthonormalBasis();
  const linalg::DenseVector reconstructed =
      model.ReconstructRow(basis, x.RowVector(0));
  double diff2 = 0.0;
  double norm2 = 0.0;
  const linalg::DenseMatrix original = y.ToDenseSlice(0, 1);
  for (size_t j = 0; j < y.cols(); ++j) {
    const double delta = reconstructed[j] - original(0, j);
    diff2 += delta * delta;
    norm2 += original(0, j) * original(0, j);
  }
  std::printf("row 0 relative reconstruction error: %.4f\n",
              diff2 / norm2);

  // The engine accounted everything the "cluster" did:
  std::printf("cluster activity: %s\n",
              result.value().stats.ToString().c_str());
  return 0;
}
