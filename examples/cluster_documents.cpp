// The paper's full motivating pipeline (Sections 1 and 2.1): reduce a
// high-dimensional sparse corpus with sPCA, then run k-means on the small
// projected matrix — "the resulting matrix X ... can be used as input to
// other machine learning algorithms such as k-means clustering."
//
// The example also fits a mixture of PPCA models (the Section 2.4
// extension) on the same corpus and compares the two groupings.

#include <cstdio>
#include <vector>

#include "core/spca.h"
#include "dist/engine.h"
#include "ml/kmeans.h"
#include "ml/ppca_mixture.h"
#include "workload/synthetic.h"

namespace {

/// Pairwise same-cluster agreement between two labelings (sampled).
double PairwiseAgreement(const std::vector<uint32_t>& a,
                         const std::vector<uint32_t>& b) {
  size_t agree = 0;
  size_t total = 0;
  for (size_t i = 0; i < a.size(); i += 11) {
    for (size_t j = i + 1; j < a.size(); j += 17) {
      agree += ((a[i] == a[j]) == (b[i] == b[j])) ? 1 : 0;
      ++total;
    }
  }
  return static_cast<double>(agree) / static_cast<double>(total);
}

}  // namespace

int main() {
  using namespace spca;

  // A corpus with 6 strong latent topics.
  workload::BagOfWordsConfig corpus;
  corpus.rows = 12000;
  corpus.vocab = 2500;
  corpus.words_per_row = 14;
  corpus.num_topics = 6;
  corpus.topic_weight = 0.85;
  corpus.seed = 321;
  const dist::DistMatrix documents = dist::DistMatrix::FromSparse(
      workload::GenerateBagOfWords(corpus), /*num_partitions=*/8);
  std::printf("corpus: %zu documents x %zu words\n", documents.rows(),
              documents.cols());

  dist::Engine engine(dist::ClusterSpec{}, dist::EngineMode::kSpark);

  // Step 1: sPCA to 6 dimensions.
  core::SpcaOptions pca_options;
  pca_options.num_components = 6;
  pca_options.max_iterations = 12;
  pca_options.target_accuracy_fraction = 0.98;
  auto pca = core::Spca(&engine, pca_options).Solve(documents);
  if (!pca.ok()) {
    std::fprintf(stderr, "sPCA failed: %s\n",
                 pca.status().ToString().c_str());
    return 1;
  }
  const linalg::DenseMatrix reduced =
      pca.value().model.Transform(&engine, documents);
  std::printf("reduced to %zu x %zu (%.0fx smaller than the corpus)\n",
              reduced.rows(), reduced.cols(),
              static_cast<double>(documents.cols()) / reduced.cols());

  // Step 2: k-means on the projection.
  const dist::DistMatrix reduced_dist =
      dist::DistMatrix::FromDense(reduced, 8);
  ml::KMeansOptions km_options;
  km_options.num_clusters = 6;
  km_options.seed = 5;
  auto clustered = ml::KMeansFit(&engine, reduced_dist, km_options);
  if (!clustered.ok()) {
    std::fprintf(stderr, "k-means failed: %s\n",
                 clustered.status().ToString().c_str());
    return 1;
  }
  std::printf("k-means: %d iterations, inertia %.1f\n",
              clustered.value().iterations_run, clustered.value().inertia);
  std::vector<size_t> sizes(km_options.num_clusters, 0);
  for (const uint32_t c : clustered.value().assignments) ++sizes[c];
  std::printf("cluster sizes:");
  for (const size_t s : sizes) std::printf(" %zu", s);
  std::printf("\n");

  // Alternative: a mixture of PPCA models directly on the sparse corpus.
  ml::PpcaMixtureOptions mixture_options;
  mixture_options.num_models = 3;
  mixture_options.num_components = 4;
  mixture_options.em_iterations = 12;
  auto mixture = ml::FitPpcaMixture(&engine, documents, mixture_options);
  if (!mixture.ok()) {
    std::fprintf(stderr, "mixture failed: %s\n",
                 mixture.status().ToString().c_str());
    return 1;
  }
  std::printf("mixture of %zu PPCA models: log-likelihood %.1f, weights",
              mixture.value().components.size(),
              mixture.value().log_likelihood);
  for (const auto& component : mixture.value().components) {
    std::printf(" %.2f", component.weight);
  }
  std::printf("\n");

  const double agreement = PairwiseAgreement(
      clustered.value().assignments, mixture.value().hard_assignments);
  std::printf("pairwise agreement between the two groupings: %.0f%%\n",
              100.0 * agreement);
  std::printf("total simulated cluster time: %.1f s\n",
              engine.SimulatedSeconds());
  return 0;
}
