// Anomaly detection on NMR-like spectra — the paper's Diabetes workload
// shape (few patients, tens of thousands of frequencies per spectrum).
//
// A PPCA model fitted on mostly-normal spectra assigns each spectrum a
// reconstruction error; spectra that the principal subspace cannot
// explain (injected anomalies with an extra rogue peak) stand out with
// much larger errors.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "common/rng.h"
#include "core/spca.h"
#include "dist/engine.h"
#include "workload/synthetic.h"

int main() {
  using namespace spca;

  // 300 normal spectra over 8,192 frequencies, mixtures of 6 prototypes.
  workload::SpectraConfig spectra_config;
  spectra_config.rows = 300;
  spectra_config.cols = 8192;
  spectra_config.num_prototypes = 6;
  spectra_config.seed = 31;
  linalg::DenseMatrix spectra = workload::GenerateSpectra(spectra_config);

  // Inject rogue peaks into a few patients.
  const std::vector<size_t> anomalies = {17, 101, 250};
  Rng rng(77);
  for (const size_t patient : anomalies) {
    const size_t center = 1000 + rng.NextUint64Below(6000);
    for (size_t j = center; j < center + 40 && j < spectra.cols(); ++j) {
      const double dx = (static_cast<double>(j) - center - 20.0) / 8.0;
      spectra(patient, j) += 3.0 * std::exp(-0.5 * dx * dx);
    }
  }

  const dist::DistMatrix y =
      dist::DistMatrix::FromDense(spectra, /*num_partitions=*/4);
  dist::Engine engine(dist::ClusterSpec{}, dist::EngineMode::kSpark);
  core::SpcaOptions options;
  options.num_components = 6;
  options.max_iterations = 15;
  options.target_accuracy_fraction = 0.98;
  auto result = core::Spca(&engine, options).Solve(y);
  if (!result.ok()) {
    std::fprintf(stderr, "fit failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  const core::PcaModel& model = result.value().model;

  // Per-spectrum reconstruction error.
  const linalg::DenseMatrix basis = model.OrthonormalBasis();
  const linalg::DenseMatrix projected = model.Transform(&engine, y);
  std::vector<std::pair<double, size_t>> scores;
  for (size_t i = 0; i < y.rows(); ++i) {
    const linalg::DenseVector reconstructed =
        model.ReconstructRow(basis, projected.RowVector(i));
    double error2 = 0.0;
    for (size_t j = 0; j < y.cols(); ++j) {
      const double diff = reconstructed[j] - spectra(i, j);
      error2 += diff * diff;
    }
    scores.emplace_back(error2, i);
  }
  std::sort(scores.begin(), scores.end(), std::greater<>());

  std::printf("top-5 anomaly scores (injected anomalies: 17, 101, 250):\n");
  for (int k = 0; k < 5; ++k) {
    std::printf("  patient %3zu  error^2 = %8.2f\n", scores[k].second,
                scores[k].first);
  }

  size_t found = 0;
  for (int k = 0; k < 3; ++k) {
    for (const size_t anomaly : anomalies) {
      if (scores[k].second == anomaly) ++found;
    }
  }
  std::printf("%zu of 3 injected anomalies in the top 3\n", found);
  std::printf("noise variance ss = %.6f, simulated time %.1f s\n",
              model.noise_variance, result.value().stats.simulated_seconds);
  return found == 3 ? 0 : 1;
}
