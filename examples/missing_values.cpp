// PPCA with missing values — the property the paper highlights in
// Section 2.4: "Since PPCA uses expectation maximization, the projections
// of principal components can be obtained even when some data values are
// missing."
//
// 15% of the cells of a low-rank matrix are hidden; core::FitWithMissing
// recovers both the principal subspace and the hidden values, and the
// example compares its imputations against the naive column-mean
// baseline.

#include <cmath>
#include <cstdio>
#include <vector>

#include "common/rng.h"
#include "core/ppca_missing.h"
#include "dist/engine.h"
#include "linalg/ops.h"
#include "workload/synthetic.h"

int main() {
  using namespace spca;

  workload::LowRankConfig data_config;
  data_config.rows = 600;
  data_config.cols = 40;
  data_config.rank = 3;
  data_config.noise_stddev = 0.05;
  data_config.seed = 5;
  const linalg::DenseMatrix truth = workload::GenerateLowRank(data_config);

  // Hide 15% of the cells.
  Rng rng(123);
  std::vector<uint8_t> observed(truth.rows() * truth.cols(), 1);
  size_t hidden = 0;
  for (auto& flag : observed) {
    if (rng.NextDouble() < 0.15) {
      flag = 0;
      ++hidden;
    }
  }
  std::printf("hiding %zu of %zu cells (%.1f%%)\n", hidden, observed.size(),
              100.0 * hidden / observed.size());

  dist::Engine engine(dist::ClusterSpec{}, dist::EngineMode::kSpark);
  core::MissingValueOptions options;
  options.spca.num_components = 3;
  options.spca.max_iterations = 15;
  options.spca.target_accuracy_fraction = 2.0;
  options.spca.compute_accuracy_trace = false;
  options.outer_iterations = 5;
  auto result = core::FitWithMissing(&engine, truth, observed, options);
  if (!result.ok()) {
    std::fprintf(stderr, "fit failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }

  // RMSE of the hidden cells: PPCA imputation vs the column-mean baseline.
  const linalg::DenseVector means = linalg::ColumnMeans(truth);
  double ppca_error2 = 0.0;
  double mean_error2 = 0.0;
  for (size_t i = 0; i < truth.rows(); ++i) {
    for (size_t j = 0; j < truth.cols(); ++j) {
      if (observed[i * truth.cols() + j]) continue;
      const double ppca_diff = result.value().imputed(i, j) - truth(i, j);
      const double mean_diff = means[j] - truth(i, j);
      ppca_error2 += ppca_diff * ppca_diff;
      mean_error2 += mean_diff * mean_diff;
    }
  }
  const double ppca_rmse = std::sqrt(ppca_error2 / hidden);
  const double mean_rmse = std::sqrt(mean_error2 / hidden);
  std::printf("hidden-cell RMSE: PPCA imputation %.4f vs column means %.4f "
              "(%.1fx better)\n",
              ppca_rmse, mean_rmse, mean_rmse / ppca_rmse);
  std::printf("final imputation delta: %.6f\n", result.value().final_delta);
  return ppca_rmse < mean_rmse ? 0 : 1;
}
