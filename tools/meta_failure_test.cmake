# Regression test for the --save-model fault-provenance writer: when the
# .meta sidecar cannot be written, spca_cli must exit non-zero, print an
# error, and remove the model file it just saved (a model fitted under
# fault injection must never be left behind without its provenance).
#
# Invoked by ctest as:
#   cmake -D CLI=<path/to/spca_cli> -D OUT_DIR=<scratch dir> -P this_file
if(NOT DEFINED CLI OR NOT DEFINED OUT_DIR)
  message(FATAL_ERROR "need -D CLI=... and -D OUT_DIR=...")
endif()

file(REMOVE_RECURSE "${OUT_DIR}")
file(MAKE_DIRECTORY "${OUT_DIR}")
set(model_path "${OUT_DIR}/model.spcm")
# Squat the sidecar path with a directory so the meta write must fail
# while the model write itself succeeds.
file(MAKE_DIRECTORY "${model_path}.meta")

execute_process(
  COMMAND "${CLI}" --generate tweets --rows 600 --cols 80 --components 4
          --iterations 2 --fault-rate 0.2 --straggler-rate 0.2
          --save-model "${model_path}"
  RESULT_VARIABLE exit_code
  OUTPUT_VARIABLE stdout
  ERROR_VARIABLE stderr)

if(exit_code EQUAL 0)
  message(FATAL_ERROR
          "spca_cli exited 0 despite an unwritable .meta sidecar; stdout:\n"
          "${stdout}")
endif()
if(NOT stderr MATCHES "error")
  message(FATAL_ERROR
          "spca_cli failed silently (no error on stderr); stderr:\n${stderr}")
endif()
if(EXISTS "${model_path}")
  message(FATAL_ERROR
          "orphaned model file left behind after the .meta write failed: "
          "${model_path}")
endif()
message(STATUS "meta failure handled loudly and cleanly (exit ${exit_code})")
