// spca_cli — run any of the repository's PCA algorithms on a matrix from
// disk (or a generated dataset) and write the principal components out.
//
// Examples:
//   # 50 components of a sparse matrix, sPCA on the Spark-style engine:
//   spca_cli --input docs.spm --format sparse-bin --components 50
//            --output components.txt
//
//   # Generate a Tweets-shaped dataset and compare algorithms:
//   spca_cli --generate tweets --rows 50000 --cols 5000 --algorithm mahout
//
// Run with --help for the full flag list.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "baselines/baseline_solvers.h"
#include "common/format.h"
#include "core/solver.h"
#include "core/spca.h"
#include "dist/engine.h"
#include "dist/fault.h"
#include "dist/replay.h"
#include "obs/export.h"
#include "obs/registry.h"
#include "obs/stream.h"
#include "serve/model_io.h"
#include "sketch/rand_svd.h"
#include "sketch/sparse_ppca.h"
#include "sketch/sparsifier.h"
#include "workload/datasets.h"
#include "workload/io.h"

namespace {

using spca::Status;
using spca::StatusOr;

constexpr const char* kUsage = R"(spca_cli — scalable PCA from the command line

Input (exactly one of):
  --input PATH          matrix file to load
  --format FMT          sparse-bin | dense-bin | sparse-text (with --text-cols N)
  --generate KIND       tweets | biotext | diabetes | images (synthetic data)
  --rows N --cols N     shape for --generate (defaults 20000 x 2000)

Algorithm:
  --algorithm ALG       spca (default) | mllib | mahout | lanczos | bidiag |
                        rand_svd | spca_sparse   (--solver is an alias)
  --platform P          spark (default) | mapreduce
  --components D        number of principal components (default 50)
  --iterations N        max EM / power iterations (default 10)
  --target FRACTION     stop at this fraction of ideal accuracy (default 0.95;
                        >1 disables the stop condition)
  --smart-guess         sPCA only: warm-start from a sample fit (sPCA-SG)

Sketching (src/sketch/, see DESIGN.md "Sketching solver family"):
  --sketch-dim K        rand_svd: sketch columns (default 0 = components + 10)
  --power-iters N       rand_svd: extra power iterations (default 1)
  --l1-threshold T      spca_sparse: per-sweep soft threshold on the loadings
                        (default 0.1)
  --sparsify-keep P     keep each input entry with probability P (reweighted
                        by 1/P) before fitting — composes with any algorithm;
                        the keep mask is seeded by --seed per input row

Cluster model:
  --partitions N        row partitions (default 16)
  --nodes N             simulated cluster nodes (default 8, 8 cores each)

Fault injection (deterministic; results are bit-identical to a clean run,
only recovery cost is charged — see DESIGN.md "Fault injection & recovery"):
  --fault-rate P        per-attempt task failure probability (default 0;
                        --failures is a legacy alias)
  --straggler-rate P    probability a task's committing attempt straggles
  --straggler-slowdown F  straggler compute multiplier (default 4)
  --max-retries N       retries per task before it must succeed (default 3)
  --retry-backoff SEC   rescheduling delay charged per retry (default 0)
  --fault-seed N        seed of the fault schedule (default 0x5ca1ab1e)
  --correlated-faults P per-(job, worker) node-loss probability: one draw
                        kills every task resident on that worker for the
                        job (tasks are placed round-robin over
                        --fault-workers workers)
  --fault-workers N     simulated workers for node-loss placement (default 16)
  --speculation         speculatively re-launch straggling tasks; first
                        committed copy wins, the duplicate's occupancy is
                        still charged to sim-time
  --speculation-delay F   re-launch a copy after this fraction of the
                        task's healthy time (default 0.25)
  --speculation-min-slowdown F  only speculate on tasks at least this much
                        slower than healthy (default 2)
  --replay-faults       keep the live run clean and inject the fault plan
                        during --replay-rows instead ("what would a 2%%
                        failure rate cost at a billion rows")

Checkpoint/restart (spca, rand_svd and spca_sparse; see DESIGN.md
"Checkpoint/restart"):
  --checkpoint-dir DIR  write DIR/checkpoint.spcm (+ .sstat resume sidecar)
                        after every EM iteration / sketch round
  --resume              load DIR/checkpoint.spcm and run only the remaining
                        iterations; bit-identical to the uninterrupted run

Output:
  --output PATH         write components as text (rows = dimensions)
  --output-bin PATH     write components as dense binary
  --save-model PATH     write the fitted model (components + mean + noise
                        variance) as a versioned, checksummed binary that
                        spca_serve / --load-model read back; a fit run under
                        fault injection also writes PATH.meta recording the
                        fault plan (seed/rates) and the recovery cost, and a
                        sketch-family fit (rand_svd / spca_sparse /
                        --sparsify-keep) records its sketch provenance
                        (solver, sketch_dim, power_iters, sparsify_keep,
                        seed) there too
  --load-model PATH     skip fitting: load a saved model and go straight to
                        the output/export flags (no --input needed)
  --seed N              RNG seed (default 1)

Observability:
  --metrics             print the metrics registry (counters/gauges/histograms)
  --trace-out PATH      write a Chrome trace-event JSON of the run; load it in
                        chrome://tracing or https://ui.perfetto.dev
  --trace-stream PATH   stream spans to PATH as JSON-lines *while* running,
                        draining the in-memory registry every --flush-every
                        completed jobs (so long sweeps stay bounded-memory);
                        read the result back with tools/trace_report. With
                        --trace-stream active, a simultaneous --trace-out
                        only holds the spans still live at exit.
  --flush-every N       flush window for --trace-stream (default 32 jobs)

Replay (cost-model extrapolation, see EXPERIMENTS.md):
  --replay-rows LIST    after the run, replay its recorded jobs at each row
                        count in the comma-separated LIST (e.g.
                        "1e6,70e6,1e9"), scaling per-row work and data
                        linearly, and print the extrapolated cluster times

Flags accept both "--flag value" and "--flag=value".
)";

struct Args {
  std::map<std::string, std::string> values;
  bool Has(const std::string& key) const { return values.contains(key); }
  std::string Get(const std::string& key, const std::string& fallback) const {
    auto it = values.find(key);
    return it == values.end() ? fallback : it->second;
  }
  long GetInt(const std::string& key, long fallback) const {
    auto it = values.find(key);
    return it == values.end() ? fallback : std::atol(it->second.c_str());
  }
  double GetDouble(const std::string& key, double fallback) const {
    auto it = values.find(key);
    return it == values.end() ? fallback : std::atof(it->second.c_str());
  }
};

StatusOr<Args> ParseArgs(int argc, char** argv) {
  static const char* kFlagsWithValue[] = {
      "--input",      "--format",     "--generate", "--rows",
      "--cols",       "--text-cols",  "--algorithm", "--platform",
      "--components", "--iterations", "--target",    "--partitions",
      "--nodes",      "--failures",   "--output",    "--output-bin",
      "--save-model", "--load-model",
      "--seed",       "--trace-out",  "--trace-stream", "--flush-every",
      "--replay-rows", "--fault-rate", "--fault-seed", "--straggler-rate",
      "--straggler-slowdown", "--max-retries", "--retry-backoff",
      "--correlated-faults", "--fault-workers", "--speculation-delay",
      "--speculation-min-slowdown", "--checkpoint-dir",
      "--solver", "--sketch-dim", "--power-iters", "--l1-threshold",
      "--sparsify-keep"};
  static const char* kFlagsBare[] = {"--smart-guess", "--metrics",
                                     "--replay-faults", "--speculation",
                                     "--resume", "--help"};
  Args args;
  for (int i = 1; i < argc; ++i) {
    std::string flag = argv[i];
    // Accept --flag=value as well as "--flag value".
    std::string inline_value;
    bool has_inline_value = false;
    if (const size_t eq = flag.find('='); eq != std::string::npos) {
      inline_value = flag.substr(eq + 1);
      flag = flag.substr(0, eq);
      has_inline_value = true;
    }
    bool matched = false;
    for (const char* known : kFlagsBare) {
      if (flag == known) {
        if (has_inline_value) {
          return Status::InvalidArgument(flag + " does not take a value");
        }
        args.values[flag] = "1";
        matched = true;
        break;
      }
    }
    if (matched) continue;
    for (const char* known : kFlagsWithValue) {
      if (flag == known) {
        if (has_inline_value) {
          args.values[flag] = inline_value;
        } else {
          if (i + 1 >= argc) {
            return Status::InvalidArgument(flag + " needs a value");
          }
          args.values[flag] = argv[++i];
        }
        matched = true;
        break;
      }
    }
    if (!matched) return Status::InvalidArgument("unknown flag " + flag);
  }
  // --solver is an exact alias for --algorithm (the Solver API's own
  // vocabulary); normalize here so the rest of the program sees one flag.
  if (args.Has("--solver")) {
    if (args.Has("--algorithm") &&
        args.Get("--algorithm", "") != args.Get("--solver", "")) {
      return Status::InvalidArgument(
          "--solver and --algorithm are aliases; pass one");
    }
    args.values["--algorithm"] = args.Get("--solver", "");
  }
  return args;
}

StatusOr<std::vector<double>> ParseRowCounts(const std::string& list) {
  std::vector<double> rows;
  size_t start = 0;
  while (start <= list.size()) {
    const size_t comma = list.find(',', start);
    const std::string item = list.substr(
        start, comma == std::string::npos ? std::string::npos : comma - start);
    if (!item.empty()) {
      char* end = nullptr;
      const double value = std::strtod(item.c_str(), &end);
      if (end == item.c_str() || *end != '\0' || !(value > 0.0)) {
        return Status::InvalidArgument("bad --replay-rows entry '" + item +
                                       "'");
      }
      rows.push_back(value);
    }
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  if (rows.empty()) {
    return Status::InvalidArgument("--replay-rows needs at least one count");
  }
  return rows;
}

StatusOr<spca::dist::DistMatrix> LoadInput(const Args& args,
                                           size_t partitions) {
  namespace workload = spca::workload;
  if (args.Has("--generate")) {
    const std::string kind_name = args.Get("--generate", "");
    workload::DatasetKind kind;
    if (kind_name == "tweets") {
      kind = workload::DatasetKind::kTweets;
    } else if (kind_name == "biotext") {
      kind = workload::DatasetKind::kBioText;
    } else if (kind_name == "diabetes") {
      kind = workload::DatasetKind::kDiabetes;
    } else if (kind_name == "images") {
      kind = workload::DatasetKind::kImages;
    } else {
      return Status::InvalidArgument("unknown --generate kind " + kind_name);
    }
    const size_t rows = args.GetInt("--rows", 20000);
    const size_t cols = args.GetInt("--cols", 2000);
    return workload::MakeDataset(kind, rows, cols, partitions,
                                 args.GetInt("--seed", 1))
        .matrix;
  }
  if (!args.Has("--input")) {
    return Status::InvalidArgument("need --input or --generate (see --help)");
  }
  const std::string path = args.Get("--input", "");
  const std::string format = args.Get("--format", "sparse-bin");
  if (format == "sparse-bin") {
    auto matrix = workload::LoadSparseBinary(path);
    if (!matrix.ok()) return matrix.status();
    return spca::dist::DistMatrix::FromSparse(std::move(matrix.value()),
                                              partitions);
  }
  if (format == "dense-bin") {
    auto matrix = workload::LoadDenseBinary(path);
    if (!matrix.ok()) return matrix.status();
    return spca::dist::DistMatrix::FromDense(std::move(matrix.value()),
                                             partitions);
  }
  if (format == "sparse-text") {
    if (!args.Has("--text-cols")) {
      return Status::InvalidArgument("sparse-text needs --text-cols");
    }
    auto matrix =
        workload::LoadSparseText(path, args.GetInt("--text-cols", 0));
    if (!matrix.ok()) return matrix.status();
    return spca::dist::DistMatrix::FromSparse(std::move(matrix.value()),
                                              partitions);
  }
  return Status::InvalidArgument("unknown --format " + format);
}

/// Builds the requested algorithm behind the one core::Solver surface —
/// spca_cli no longer knows about per-algorithm Fit entry points.
StatusOr<std::unique_ptr<spca::core::Solver>> MakeSolver(
    const Args& args, spca::dist::Engine* engine) {
  const std::string algorithm = args.Get("--algorithm", "spca");
  const size_t d = args.GetInt("--components", 50);
  const int iterations = static_cast<int>(args.GetInt("--iterations", 10));
  const double target = args.GetDouble("--target", 0.95);
  const uint64_t seed = args.GetInt("--seed", 1);

  if (algorithm == "spca") {
    spca::core::SpcaOptions options;
    options.num_components = d;
    options.max_iterations = iterations;
    options.target_accuracy_fraction = target;
    options.smart_guess = args.Has("--smart-guess");
    options.seed = seed;
    return std::unique_ptr<spca::core::Solver>(
        std::make_unique<spca::core::Spca>(engine, options));
  }
  if (algorithm == "mllib") {
    spca::baselines::CovEigOptions options;
    options.num_components = d;
    options.seed = seed;
    return spca::baselines::MakeCovEigSolver(engine, options);
  }
  if (algorithm == "mahout") {
    spca::baselines::SsvdOptions options;
    options.num_components = d;
    options.max_power_iterations = iterations;
    options.target_accuracy_fraction = target;
    options.seed = seed;
    return spca::baselines::MakeSsvdSolver(engine, options);
  }
  if (algorithm == "lanczos") {
    spca::baselines::LanczosOptions options;
    options.num_components = d;
    options.seed = seed;
    return spca::baselines::MakeLanczosSolver(engine, options);
  }
  if (algorithm == "bidiag") {
    spca::baselines::SvdBidiagOptions options;
    options.num_components = d;
    return spca::baselines::MakeSvdBidiagSolver(engine, options);
  }
  if (algorithm == "rand_svd") {
    spca::sketch::RandSvdOptions options;
    options.num_components = d;
    options.sketch_dim = static_cast<size_t>(args.GetInt("--sketch-dim", 0));
    options.power_iterations =
        static_cast<int>(args.GetInt("--power-iters", 1));
    options.target_accuracy_fraction = target;
    options.seed = seed;
    return std::unique_ptr<spca::core::Solver>(
        std::make_unique<spca::sketch::RandSvdPca>(engine, options));
  }
  if (algorithm == "spca_sparse") {
    spca::sketch::SparsePpcaOptions options;
    options.num_components = d;
    options.max_iterations = iterations;
    options.l1_threshold =
        args.GetDouble("--l1-threshold", options.l1_threshold);
    options.target_accuracy_fraction = target;
    options.seed = seed;
    return std::unique_ptr<spca::core::Solver>(
        std::make_unique<spca::sketch::SparsePpca>(engine, options));
  }
  return Status::InvalidArgument("unknown --algorithm " + algorithm);
}

StatusOr<spca::core::PcaModel> RunAlgorithm(Args args,
                                            spca::dist::Engine* engine,
                                            const spca::dist::DistMatrix& y) {
  // Checkpoint/restart (sPCA only): the checkpoint file is a normal SPCM
  // model plus an .sstat sidecar of resume state, overwritten after every
  // EM iteration. --resume warm-starts from it and runs only the remaining
  // iterations; sidecar step numbering stays global across restarts.
  const bool resume = args.Has("--resume");
  const bool checkpointing = args.Has("--checkpoint-dir");
  const std::string algorithm = args.Get("--algorithm", "spca");
  std::string checkpoint_file;
  if (checkpointing || resume) {
    if (algorithm != "spca" && algorithm != "rand_svd" &&
        algorithm != "spca_sparse") {
      return Status::InvalidArgument(
          "--checkpoint-dir/--resume support only --algorithm spca, "
          "rand_svd or spca_sparse");
    }
    if (!checkpointing) {
      return Status::InvalidArgument("--resume needs --checkpoint-dir");
    }
    checkpoint_file = args.Get("--checkpoint-dir", "") + "/checkpoint.spcm";
  }
  uint64_t base_step = 0;
  std::optional<spca::serve::LoadedCheckpoint> loaded;
  if (resume) {
    auto checkpoint = spca::serve::LoadCheckpoint(checkpoint_file);
    if (!checkpoint.ok()) return checkpoint.status();
    loaded = std::move(checkpoint).value();
    base_step = loaded->state.step;
    // Remaining-work math: spca/spca_sparse checkpoint after each EM
    // iteration out of --iterations; rand_svd after each sketch round out
    // of --power-iters + 1 (the first round is the single data pass).
    const bool rounds = algorithm == "rand_svd";
    const long total = rounds ? args.GetInt("--power-iters", 1) + 1
                              : args.GetInt("--iterations", 10);
    std::printf("resuming %s from %s %llu of %ld\n", checkpoint_file.c_str(),
                rounds ? "round" : "iteration",
                static_cast<unsigned long long>(base_step), total);
    if (static_cast<long>(base_step) >= total) {
      std::printf("checkpoint already complete; nothing to run\n");
      return std::move(loaded->model);
    }
    if (rounds) {
      args.values["--power-iters"] =
          std::to_string(total - static_cast<long>(base_step) - 1);
    } else {
      args.values["--iterations"] =
          std::to_string(total - static_cast<long>(base_step));
    }
  }

  auto solver = MakeSolver(args, engine);
  if (!solver.ok()) return solver.status();

  spca::core::FitOptions fit;
  if (checkpointing) {
    fit.on_checkpoint = [&](const spca::core::PcaModel& model,
                            const spca::core::SolverCheckpoint& state) {
      spca::core::SolverCheckpoint shifted = state;
      shifted.step += base_step;
      return spca::serve::SaveCheckpoint(model, shifted, checkpoint_file);
    };
  }

  auto run = [&]() -> StatusOr<spca::core::SolveResult> {
    if (!resume) return spca::core::RunSolver(solver.value().get(), y, fit);
    // Restore must land between Init and Step, so spell out RunSolver.
    SPCA_RETURN_IF_ERROR(solver.value()->Init(fit));
    SPCA_RETURN_IF_ERROR(solver.value()->Restore(loaded->model,
                                                 loaded->state));
    SPCA_RETURN_IF_ERROR(solver.value()->Step(y));
    return solver.value()->Result();
  };
  auto result = run();
  if (!result.ok()) return result.status();
  if (checkpointing) {
    std::printf("checkpointed every iteration to %s\n",
                checkpoint_file.c_str());
  }
  const std::string_view name = solver.value()->name();
  if (name == "spca") {
    std::printf("sPCA: %d iterations", result.value().iterations_run);
    if (!result.value().trace.empty()) {
      std::printf(", final accuracy %.1f%% of ideal",
                  result.value().trace.back().accuracy_percent);
    }
    std::printf("\n");
  } else if (name == "mllib") {
    std::printf("MLlib-PCA: driver held %s\n",
                spca::HumanBytes(
                    static_cast<double>(result.value().driver_bytes))
                    .c_str());
  } else if (name == "mahout") {
    std::printf("Mahout-PCA (SSVD): %d rounds\n",
                result.value().iterations_run);
  } else if (name == "rand_svd") {
    std::printf("RandSVD-PCA: %d sketch rounds", result.value().iterations_run);
    if (!result.value().trace.empty()) {
      std::printf(", final accuracy %.1f%% of ideal",
                  result.value().trace.back().accuracy_percent);
    }
    std::printf("\n");
  } else if (name == "spca_sparse") {
    std::printf("sparse-PPCA: %d iterations", result.value().iterations_run);
    if (!result.value().trace.empty()) {
      std::printf(", final accuracy %.1f%% of ideal",
                  result.value().trace.back().accuracy_percent);
    }
    std::printf("\n");
  }
  return std::move(result.value().model);
}

/// Handles --output / --output-bin / --save-model for a model however it
/// was obtained (fitted this run or loaded from disk). A non-empty
/// `fault_meta` (key=value lines describing the fault plan the fit ran
/// under) is written next to --save-model as a `.meta` side-channel so a
/// served model's provenance survives the process.
int WriteModelOutputs(const Args& args, const spca::core::PcaModel& model,
                      const std::string& fault_meta = std::string()) {
  if (args.Has("--output")) {
    const Status status = spca::workload::SaveDenseText(
        model.components, args.Get("--output", ""));
    if (!status.ok()) {
      std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
      return 1;
    }
    std::printf("wrote %s\n", args.Get("--output", "").c_str());
  }
  if (args.Has("--output-bin")) {
    const Status status = spca::workload::SaveDenseBinary(
        model.components, args.Get("--output-bin", ""));
    if (!status.ok()) {
      std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
      return 1;
    }
    std::printf("wrote %s\n", args.Get("--output-bin", "").c_str());
  }
  if (args.Has("--save-model")) {
    const std::string path = args.Get("--save-model", "");
    const Status status = spca::serve::SaveModel(model, path);
    if (!status.ok()) {
      std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
      return 1;
    }
    std::printf("saved model (%s) to %s\n",
                spca::HumanBytes(static_cast<double>(spca::serve::ModelFileSize(
                                     model.input_dim(),
                                     model.num_components())))
                    .c_str(),
                path.c_str());
    if (!fault_meta.empty()) {
      const std::string meta_path = path + ".meta";
      const Status meta_status = spca::obs::WriteFile(meta_path, fault_meta);
      if (!meta_status.ok()) {
        // The model without its provenance sidecar would masquerade as a
        // clean-run artifact; remove it and fail the whole invocation.
        std::remove(path.c_str());
        std::fprintf(stderr,
                     "error: %s\nerror: removed %s — a model fitted under "
                     "fault injection or a sketching solver must not be "
                     "saved without its .meta provenance\n",
                     meta_status.ToString().c_str(), path.c_str());
        return 1;
      }
      std::printf("saved fault metadata to %s\n", meta_path.c_str());
    }
  }
  return 0;
}

int Main(int argc, char** argv) {
  auto args = ParseArgs(argc, argv);
  if (!args.ok()) {
    std::fprintf(stderr, "error: %s\n%s", args.status().ToString().c_str(),
                 kUsage);
    return 2;
  }
  if (args->Has("--help") || argc == 1) {
    std::fputs(kUsage, stdout);
    return 0;
  }

  if (args->Has("--load-model")) {
    // Serving path: no fit, no engine — load the persisted model and run
    // the output/export flags against it.
    auto model = spca::serve::LoadModel(args->Get("--load-model", ""));
    if (!model.ok()) {
      std::fprintf(stderr, "error: %s\n", model.status().ToString().c_str());
      return 1;
    }
    std::printf("loaded model %s: %zu x %zu, noise variance %.6g\n",
                args->Get("--load-model", "").c_str(), model->input_dim(),
                model->num_components(), model->noise_variance);
    return WriteModelOutputs(*args, model.value());
  }

  const size_t partitions = args->GetInt("--partitions", 16);
  auto matrix = LoadInput(*args, partitions);
  if (!matrix.ok()) {
    std::fprintf(stderr, "error: %s\n", matrix.status().ToString().c_str());
    return 1;
  }
  std::printf("matrix: %zu x %zu, %zu stored entries (%s)\n",
              matrix->rows(), matrix->cols(), matrix->StoredEntries(),
              spca::HumanBytes(static_cast<double>(matrix->ByteSize()))
                  .c_str());

  spca::dist::ClusterSpec spec;
  spec.num_nodes = static_cast<int>(args->GetInt("--nodes", 8));

  spca::dist::FaultSpec fault_spec;
  fault_spec.task_failure_probability =
      args->GetDouble("--fault-rate", args->GetDouble("--failures", 0.0));
  fault_spec.straggler_probability = args->GetDouble("--straggler-rate", 0.0);
  fault_spec.straggler_slowdown =
      args->GetDouble("--straggler-slowdown", fault_spec.straggler_slowdown);
  fault_spec.max_task_attempts =
      1 + static_cast<int>(args->GetInt("--max-retries", 3));
  fault_spec.retry_backoff_sec = args->GetDouble("--retry-backoff", 0.0);
  fault_spec.seed = static_cast<uint64_t>(
      args->GetInt("--fault-seed", static_cast<long>(fault_spec.seed)));
  fault_spec.node_failure_probability =
      args->GetDouble("--correlated-faults", 0.0);
  fault_spec.num_workers = static_cast<int>(args->GetInt(
      "--fault-workers", static_cast<long>(fault_spec.num_workers)));
  fault_spec.speculation.enabled = args->Has("--speculation");
  fault_spec.speculation.relaunch_delay_factor = args->GetDouble(
      "--speculation-delay", fault_spec.speculation.relaunch_delay_factor);
  fault_spec.speculation.min_slowdown = args->GetDouble(
      "--speculation-min-slowdown", fault_spec.speculation.min_slowdown);
  if (fault_spec.task_failure_probability < 0.0 ||
      fault_spec.task_failure_probability >= 1.0 ||
      fault_spec.straggler_probability < 0.0 ||
      fault_spec.straggler_probability > 1.0 ||
      fault_spec.node_failure_probability < 0.0 ||
      fault_spec.node_failure_probability >= 1.0) {
    std::fprintf(stderr,
                 "error: --fault-rate and --correlated-faults must be in "
                 "[0, 1) and --straggler-rate in [0, 1]\n");
    return 2;
  }
  if (fault_spec.straggler_slowdown < 1.0 ||
      fault_spec.max_task_attempts < 1 || fault_spec.retry_backoff_sec < 0.0) {
    std::fprintf(stderr,
                 "error: --straggler-slowdown must be >= 1, --max-retries and "
                 "--retry-backoff non-negative\n");
    return 2;
  }
  if (fault_spec.num_workers < 1 ||
      fault_spec.speculation.relaunch_delay_factor <= 0.0 ||
      fault_spec.speculation.min_slowdown <= 1.0) {
    std::fprintf(stderr,
                 "error: --fault-workers must be >= 1, --speculation-delay "
                 "> 0, --speculation-min-slowdown > 1\n");
    return 2;
  }
  const spca::dist::FaultPlan fault_plan(fault_spec);
  const bool replay_faults_only = args->Has("--replay-faults");
  if (replay_faults_only && !args->Has("--replay-rows")) {
    std::fprintf(stderr, "error: --replay-faults requires --replay-rows\n");
    return 2;
  }

  const std::string platform = args->Get("--platform", "spark");
  const spca::dist::EngineMode mode =
      platform == "mapreduce" ? spca::dist::EngineMode::kMapReduce
                              : spca::dist::EngineMode::kSpark;
  spca::obs::Registry registry;
  const long flush_every = args->GetInt(
      "--flush-every",
      static_cast<long>(spca::obs::TraceStreamer::kDefaultFlushEveryJobs));
  if (flush_every <= 0) {
    std::fprintf(stderr, "error: --flush-every must be positive\n");
    return 2;
  }
  spca::obs::TraceStreamer streamer(&registry,
                                    static_cast<size_t>(flush_every));
  if (args->Has("--trace-stream")) {
    const Status status = streamer.Open(args->Get("--trace-stream", ""));
    if (!status.ok()) {
      std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
      return 1;
    }
  }
  spca::dist::Engine engine(spec, mode, &registry);
  if (fault_plan.active() && !replay_faults_only) {
    engine.SetFaultPlan(fault_plan);
  }

  // Input sparsification composes with any algorithm: replace the matrix
  // with its seeded keep/reweight sample before the fit sees it.
  const double sparsify_keep = args->GetDouble("--sparsify-keep", 0.0);
  if (args->Has("--sparsify-keep")) {
    if (!(sparsify_keep > 0.0 && sparsify_keep <= 1.0)) {
      std::fprintf(stderr, "error: --sparsify-keep must be in (0, 1]\n");
      return 2;
    }
    spca::sketch::SparsifierOptions sparsify;
    sparsify.keep_probability = sparsify_keep;
    sparsify.seed = static_cast<uint64_t>(args->GetInt("--seed", 1));
    matrix.value() =
        spca::sketch::Sparsifier(sparsify).Apply(matrix.value(), &registry);
    std::printf("sparsified input: keep %.3g -> %zu stored entries (%s)\n",
                sparsify_keep, matrix->StoredEntries(),
                spca::HumanBytes(static_cast<double>(matrix->ByteSize()))
                    .c_str());
  }

  auto model = RunAlgorithm(*args, &engine, matrix.value());
  if (!model.ok()) {
    std::fprintf(stderr, "error: %s\n", model.status().ToString().c_str());
    return 1;
  }
  std::printf("components: %zu x %zu, noise variance %.6g\n",
              model->input_dim(), model->num_components(),
              model->noise_variance);
  std::printf("simulated cluster: %s (%d nodes, %s engine)\n",
              spca::HumanSeconds(engine.SimulatedSeconds()).c_str(),
              spec.num_nodes, spca::dist::EngineModeToString(mode));
  std::printf("communication: %s\n", engine.stats().ToString().c_str());
  std::string fault_meta;
  if (fault_plan.active() && !replay_faults_only) {
    const spca::dist::CommStats& stats = engine.stats();
    auto counter = [&registry](const char* name) -> unsigned long long {
      const spca::obs::Counter* c = registry.FindCounter(name);
      return c == nullptr ? 0 : c->AsUint64();
    };
    const unsigned long long node_loss_tasks =
        counter("engine.faults.node_loss_tasks");
    const unsigned long long speculation_launched =
        counter("engine.speculation.launched");
    const unsigned long long speculation_copies_won =
        counter("engine.speculation.copies_won");
    const unsigned long long speculation_wasted_flops =
        counter("engine.speculation.wasted_flops");
    std::printf(
        "fault recovery: %llu task retries, %llu stragglers "
        "(seed %llu, rate %.3g, straggler rate %.3g)\n",
        static_cast<unsigned long long>(stats.task_retries),
        static_cast<unsigned long long>(stats.straggler_tasks),
        static_cast<unsigned long long>(fault_spec.seed),
        fault_spec.task_failure_probability,
        fault_spec.straggler_probability);
    if (fault_spec.node_failure_probability > 0.0) {
      std::printf("node losses: %llu tasks killed by correlated failures "
                  "(rate %.3g, %d workers)\n",
                  node_loss_tasks, fault_spec.node_failure_probability,
                  fault_spec.num_workers);
    }
    if (fault_spec.speculation.enabled) {
      std::printf("speculation: %llu copies launched, %llu won, "
                  "%llu duplicate flops charged\n",
                  speculation_launched, speculation_copies_won,
                  speculation_wasted_flops);
    }
    // Provenance side-channel for --save-model: the fit ran under fault
    // injection; record the plan and what it cost so the served model's
    // history is auditable. The buffer is checked for truncation below —
    // a partial provenance record must never be written silently.
    char meta[1024];
    const int meta_len = std::snprintf(
        meta, sizeof(meta),
        "fault_seed=%llu\n"
        "fault_rate=%.17g\n"
        "straggler_rate=%.17g\n"
        "straggler_slowdown=%.17g\n"
        "max_retries=%d\n"
        "retry_backoff_sec=%.17g\n"
        "node_failure_probability=%.17g\n"
        "fault_workers=%d\n"
        "speculation=%d\n"
        "speculation_delay=%.17g\n"
        "speculation_min_slowdown=%.17g\n"
        "task_retries=%llu\n"
        "straggler_tasks=%llu\n"
        "node_loss_tasks=%llu\n"
        "speculation_launched=%llu\n"
        "speculation_copies_won=%llu\n"
        "speculation_wasted_flops=%llu\n"
        "algorithm=%s\n",
        static_cast<unsigned long long>(fault_spec.seed),
        fault_spec.task_failure_probability,
        fault_spec.straggler_probability, fault_spec.straggler_slowdown,
        fault_spec.max_task_attempts - 1, fault_spec.retry_backoff_sec,
        fault_spec.node_failure_probability, fault_spec.num_workers,
        fault_spec.speculation.enabled ? 1 : 0,
        fault_spec.speculation.relaunch_delay_factor,
        fault_spec.speculation.min_slowdown,
        static_cast<unsigned long long>(stats.task_retries),
        static_cast<unsigned long long>(stats.straggler_tasks),
        node_loss_tasks, speculation_launched, speculation_copies_won,
        speculation_wasted_flops, args->Get("--algorithm", "spca").c_str());
    if (meta_len < 0 || static_cast<size_t>(meta_len) >= sizeof(meta)) {
      std::fprintf(stderr,
                   "error: fault metadata truncated (%d bytes needed)\n",
                   meta_len);
      return 1;
    }
    fault_meta = meta;
  }
  // Sketch provenance rides in the same .meta sidecar: which sketch solver
  // (or input sparsification) produced the saved model, and with what
  // dials, so a served model's accuracy/cost trade-off is auditable.
  const std::string algorithm = args->Get("--algorithm", "spca");
  if (algorithm == "rand_svd" || algorithm == "spca_sparse" ||
      args->Has("--sparsify-keep")) {
    char sketch_meta[512];
    const int sketch_len = std::snprintf(
        sketch_meta, sizeof(sketch_meta),
        "solver=%s\n"
        "sketch_dim=%ld\n"
        "power_iters=%ld\n"
        "l1_threshold=%.17g\n"
        "sparsify_keep=%.17g\n"
        "seed=%ld\n",
        algorithm.c_str(), args->GetInt("--sketch-dim", 0),
        args->GetInt("--power-iters", 1),
        args->GetDouble("--l1-threshold", 0.1), sparsify_keep,
        args->GetInt("--seed", 1));
    if (sketch_len < 0 ||
        static_cast<size_t>(sketch_len) >= sizeof(sketch_meta)) {
      std::fprintf(stderr,
                   "error: sketch metadata truncated (%d bytes needed)\n",
                   sketch_len);
      return 1;
    }
    fault_meta += sketch_meta;
  }

  if (args->Has("--replay-rows")) {
    auto row_counts = ParseRowCounts(args->Get("--replay-rows", ""));
    if (!row_counts.ok()) {
      std::fprintf(stderr, "error: %s\n",
                   row_counts.status().ToString().c_str());
      return 2;
    }
    std::printf(
        "\nreplayed at other row counts (cost model; per-row work and data "
        "scaled linearly, driver algebra and broadcasts held fixed%s):\n",
        replay_faults_only ? "; fault plan injected into each replay" : "");
    double cursor = engine.SimulatedSeconds();
    for (const double rows : row_counts.value()) {
      const double scale = rows / static_cast<double>(matrix->rows());
      char label[48];
      std::snprintf(label, sizeof(label), "%.0frows", rows);
      const double seconds = spca::dist::ReplayRun(
          engine.traces(), engine.stats(), spec, mode,
          [scale](const spca::dist::JobTrace&) {
            spca::dist::ReplayScales scales;
            scales.flops = scale;
            scales.input_bytes = scale;
            scales.intermediate_bytes = scale;
            scales.result_bytes = 1.0;
            return scales;
          },
          &registry, label, cursor,
          replay_faults_only ? &fault_plan : nullptr);
      cursor += seconds;
      std::printf("  %14.0f rows: %s\n", rows,
                  spca::HumanSeconds(seconds).c_str());
    }
  }

  if (const int rc = WriteModelOutputs(*args, model.value(), fault_meta);
      rc != 0) {
    return rc;
  }
  if (streamer.is_open()) {
    const size_t live_spans = registry.SpansHeld();
    const Status status = streamer.Close();
    if (!status.ok()) {
      std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
      return 1;
    }
    std::printf("streamed %zu spans in %zu flushes to %s (%zu live at exit)\n",
                streamer.spans_written(), streamer.flushes(),
                streamer.path().c_str(), live_spans);
  }
  if (args->Has("--metrics")) {
    std::printf("\n%s", spca::obs::MetricsTable(registry).c_str());
  }
  if (args->Has("--trace-out")) {
    const std::string path = args->Get("--trace-out", "");
    const Status status =
        spca::obs::WriteFile(path, spca::obs::ChromeTraceJson(registry));
    if (!status.ok()) {
      std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
      return 1;
    }
    std::printf("wrote trace (%zu spans) to %s\n", registry.spans().size(),
                path.c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return Main(argc, argv); }
