// spca_stream — train-while-serving: ingest an unbounded (optionally
// drifting) row stream with a streaming solver, periodically snapshot the
// model and hot-swap it into a live ModelRegistry while closed-loop query
// traffic keeps flowing against the ProjectionService.
//
//   # Drifting stream, mini-batch EM, a swap every 8 batches, 4 query
//   # threads hammering the service the whole time:
//   spca_stream --solver minibatch --dim 256 --rank 8 --components 8
//               --batches 48 --publish-every 8 --drift-every 16
//               --serve-concurrency 4 --metrics
//
// Run with --help for the full flag list.

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "dist/engine.h"
#include "obs/export.h"
#include "obs/registry.h"
#include "serve/model_registry.h"
#include "serve/service.h"
#include "stream/pipeline.h"
#include "stream/publisher.h"
#include "stream/stream_solver.h"
#include "workload/load_gen.h"
#include "workload/row_stream.h"

namespace {

using spca::Status;

constexpr const char* kUsage = R"(spca_stream — streaming PCA with hot model swaps

Stream:
  --dim D               row dimensionality (default 256)
  --rank K              true generating rank (default 8)
  --batch-rows N        rows per mini-batch (default 256)
  --batches N           mini-batches to ingest (default 48)
  --partitions N        partitions per batch (default 4)
  --drift-every N       rotate the true subspace every N batches (default 16;
                        0 = stationary stream)
  --drift-amount F      drift step magnitude (default 0.15)
  --noise F             observation noise stddev (default 0.05)
  --seed N              stream + solver seed (default 1)

Solver:
  --solver NAME         minibatch (default) | oja
  --components D        principal components (default = --rank)
  --decay F             EMA decay for running statistics (default 0.2;
                        0 = flat average, for stationary streams)
  --eta0 F --tau F      Oja learning-rate schedule eta0/(1+t/tau)
  --reorth-every N      Oja lazy reorthonormalization period (default 8)

Publishing:
  --publish-every N     snapshot + hot-swap every N batches (default 8)
  --name NAME           registry name served (default "stream")
  --spool PATH          durable spool file: publish via SaveModel + atomic
                        rename + registry Load instead of in-memory install
  --background-publisher  publish from a dedicated thread (swaps overlap
                        ingestion; latest snapshot wins)
  --checkpoint-every-batches N  durably checkpoint the solver every N
                        ingested batches (default 0 = never); a killed run
                        restarts from the latest checkpointed batch
                        boundary, bit-identical to never having died
  --checkpoint-path PATH  where the checkpoint pair (model + solver resume
                        sidecar) lands; required when checkpointing

Serving (query traffic during ingest):
  --serve-concurrency N closed-loop query driver threads (default 2;
                        0 = no query traffic)
  --threads N           service worker threads (default 2)
  --batch-max N         service batch size bound (default 32)
  --queue-cap N         admission-control queue bound (default 1024)

Cluster model:
  --nodes N             simulated cluster nodes (default 8)

Checks / output:
  --require-swaps N     exit non-zero unless at least N hot swaps landed
  --metrics             print the metrics registry at exit

Flags accept both "--flag value" and "--flag=value".
)";

struct Options {
  size_t dim = 256;
  size_t rank = 8;
  size_t batch_rows = 256;
  size_t batches = 48;
  size_t partitions = 4;
  size_t drift_every = 16;
  double drift_amount = 0.15;
  double noise = 0.05;
  uint64_t seed = 1;

  std::string solver = "minibatch";
  size_t components = 0;  // 0: defaults to rank
  double decay = 0.2;
  double eta0 = 2.0;
  double tau = 50.0;
  size_t reorth_every = 8;

  size_t publish_every = 8;
  std::string name = "stream";
  std::string spool;
  bool background_publisher = false;
  size_t checkpoint_every = 0;
  std::string checkpoint_path;

  size_t serve_concurrency = 2;
  size_t threads = 2;
  size_t batch_max = 32;
  size_t queue_cap = 1024;

  int nodes = 8;
  size_t require_swaps = 0;
  bool print_metrics = false;
};

bool ParseOptions(int argc, char** argv, Options* out) {
  for (int i = 1; i < argc; ++i) {
    std::string flag = argv[i];
    std::string value;
    bool has_value = false;
    if (const size_t eq = flag.find('='); eq != std::string::npos) {
      value = flag.substr(eq + 1);
      flag = flag.substr(0, eq);
      has_value = true;
    }
    auto need_value = [&]() -> bool {
      if (has_value) return true;
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: %s needs a value\n", flag.c_str());
        return false;
      }
      value = argv[++i];
      return true;
    };
    auto size_flag = [&](const char* name, size_t* slot) -> int {
      if (flag != name) return 0;
      if (!need_value()) return -1;
      *slot = std::strtoul(value.c_str(), nullptr, 10);
      return 1;
    };
    auto double_flag = [&](const char* name, double* slot) -> int {
      if (flag != name) return 0;
      if (!need_value()) return -1;
      *slot = std::atof(value.c_str());
      return 1;
    };
    if (flag == "--help") {
      std::fputs(kUsage, stdout);
      std::exit(0);
    } else if (flag == "--metrics") {
      out->print_metrics = true;
    } else if (flag == "--background-publisher") {
      out->background_publisher = true;
    } else if (flag == "--solver") {
      if (!need_value()) return false;
      out->solver = value;
    } else if (flag == "--name") {
      if (!need_value()) return false;
      out->name = value;
    } else if (flag == "--spool") {
      if (!need_value()) return false;
      out->spool = value;
    } else if (flag == "--checkpoint-path") {
      if (!need_value()) return false;
      out->checkpoint_path = value;
    } else if (flag == "--seed") {
      if (!need_value()) return false;
      out->seed = std::strtoull(value.c_str(), nullptr, 10);
    } else if (flag == "--nodes") {
      if (!need_value()) return false;
      out->nodes = std::atoi(value.c_str());
    } else {
      int matched = 0;
      struct {
        const char* name;
        size_t* slot;
      } size_flags[] = {
          {"--dim", &out->dim},
          {"--rank", &out->rank},
          {"--batch-rows", &out->batch_rows},
          {"--batches", &out->batches},
          {"--partitions", &out->partitions},
          {"--drift-every", &out->drift_every},
          {"--components", &out->components},
          {"--reorth-every", &out->reorth_every},
          {"--publish-every", &out->publish_every},
          {"--checkpoint-every-batches", &out->checkpoint_every},
          {"--serve-concurrency", &out->serve_concurrency},
          {"--threads", &out->threads},
          {"--batch-max", &out->batch_max},
          {"--queue-cap", &out->queue_cap},
          {"--require-swaps", &out->require_swaps},
      };
      struct {
        const char* name;
        double* slot;
      } double_flags[] = {
          {"--drift-amount", &out->drift_amount},
          {"--noise", &out->noise},
          {"--decay", &out->decay},
          {"--eta0", &out->eta0},
          {"--tau", &out->tau},
      };
      for (const auto& entry : size_flags) {
        matched = size_flag(entry.name, entry.slot);
        if (matched != 0) break;
      }
      if (matched == 0) {
        for (const auto& entry : double_flags) {
          matched = double_flag(entry.name, entry.slot);
          if (matched != 0) break;
        }
      }
      if (matched < 0) return false;
      if (matched == 0) {
        std::fprintf(stderr, "error: unknown flag %s\n%s", flag.c_str(),
                     kUsage);
        return false;
      }
    }
  }
  if (out->components == 0) out->components = out->rank;
  if (out->solver != "minibatch" && out->solver != "oja") {
    std::fprintf(stderr, "error: --solver must be minibatch or oja\n");
    return false;
  }
  if (out->dim == 0 || out->rank == 0 || out->batch_rows == 0 ||
      out->batches == 0 || out->threads == 0 || out->batch_max == 0) {
    std::fprintf(stderr, "error: sizes must be positive\n");
    return false;
  }
  if (out->checkpoint_every > 0 && out->checkpoint_path.empty()) {
    std::fprintf(stderr,
                 "error: --checkpoint-every-batches requires "
                 "--checkpoint-path\n");
    return false;
  }
  return true;
}

/// Closed-loop query drivers: each keeps one dense projection request
/// outstanding against the service until told to stop. Queries start before
/// the first publish (kNoModel responses) and keep flowing across every hot
/// swap — the train-while-serving traffic the swap protocol must not tear.
struct QueryTraffic {
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> ok{0};
  std::atomic<uint64_t> no_model{0};
  std::atomic<uint64_t> other{0};
  std::vector<std::thread> drivers;

  void Start(spca::serve::ProjectionService* service, const std::string& model,
             size_t concurrency, size_t dim, uint64_t seed) {
    spca::workload::QuerySetConfig config;
    config.num_queries = 256;
    config.dim = dim;
    config.dense = true;
    config.seed = seed + 0x9e3779b9ull;
    auto queries = std::make_shared<std::vector<spca::workload::Query>>(
        spca::workload::GenerateQueries(config));
    for (size_t t = 0; t < concurrency; ++t) {
      drivers.emplace_back([this, service, model, queries, t] {
        size_t i = t;
        while (!stop.load(std::memory_order_relaxed)) {
          spca::serve::ProjectionRequest request;
          request.model = model;
          request.dense = (*queries)[i % queries->size()].dense;
          auto response = service->Submit(std::move(request)).get();
          switch (response.outcome) {
            case spca::serve::RequestOutcome::kOk:
              ok.fetch_add(1, std::memory_order_relaxed);
              break;
            case spca::serve::RequestOutcome::kNoModel:
              no_model.fetch_add(1, std::memory_order_relaxed);
              break;
            default:
              other.fetch_add(1, std::memory_order_relaxed);
              break;
          }
          i += 7;  // stride through the query set
        }
      });
    }
  }

  void Stop() {
    stop.store(true);
    for (auto& driver : drivers) driver.join();
    drivers.clear();
  }
};

int Main(int argc, char** argv) {
  Options options;
  if (!ParseOptions(argc, argv, &options)) return 2;

  spca::obs::Registry registry;
  spca::serve::ModelRegistry models(&registry);

  spca::serve::ServiceOptions service_options;
  service_options.num_threads = options.threads;
  service_options.batch_max = options.batch_max;
  service_options.queue_capacity = options.queue_cap;
  service_options.metrics = &registry;
  spca::serve::ProjectionService service(&models, service_options);
  if (const Status status = service.Start(); !status.ok()) {
    std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
    return 1;
  }
  QueryTraffic traffic;
  if (options.serve_concurrency > 0) {
    traffic.Start(&service, options.name, options.serve_concurrency,
                  options.dim, options.seed);
  }

  spca::dist::ClusterSpec spec;
  spec.num_nodes = options.nodes;
  spca::dist::Engine engine(spec, spca::dist::EngineMode::kSpark, &registry);

  spca::stream::StreamSolverOptions solver_options;
  solver_options.num_components = options.components;
  solver_options.seed = options.seed;
  solver_options.decay = options.decay;
  solver_options.eta0 = options.eta0;
  solver_options.tau = options.tau;
  solver_options.reorth_every = options.reorth_every;
  std::unique_ptr<spca::core::Solver> solver;
  if (options.solver == "oja") {
    solver =
        std::make_unique<spca::stream::OjaSolver>(&engine, solver_options);
  } else {
    solver = std::make_unique<spca::stream::MiniBatchEmSolver>(
        &engine, solver_options);
  }
  if (const Status status = solver->Init({}); !status.ok()) {
    std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
    return 1;
  }

  spca::stream::PublisherOptions publisher_options;
  publisher_options.registry = &models;
  publisher_options.model_name = options.name;
  publisher_options.spool_path = options.spool;
  publisher_options.metrics = &registry;
  spca::stream::ModelPublisher publisher(publisher_options);

  spca::workload::RowStreamConfig stream_config;
  stream_config.dim = options.dim;
  stream_config.rank = options.rank;
  stream_config.batch_rows = options.batch_rows;
  stream_config.partitions_per_batch = options.partitions;
  stream_config.noise_stddev = options.noise;
  stream_config.drift_every_batches = options.drift_every;
  stream_config.drift_amount = options.drift_amount;
  stream_config.seed = options.seed;
  spca::workload::RowStream stream(stream_config);

  spca::stream::StreamPipelineOptions pipeline_options;
  pipeline_options.publish_every_batches = options.publish_every;
  pipeline_options.max_batches = options.batches;
  pipeline_options.background_publisher = options.background_publisher;
  pipeline_options.checkpoint_every_batches = options.checkpoint_every;
  pipeline_options.checkpoint_path = options.checkpoint_path;
  pipeline_options.metrics = &registry;
  spca::stream::StreamPipeline pipeline(solver.get(), &publisher,
                                        pipeline_options);

  std::printf(
      "streaming %s: dim=%zu rank=%zu components=%zu, %zu batches x %zu "
      "rows, drift every %zu batches, publish every %zu (%s)\n",
      options.solver.c_str(), options.dim, options.rank, options.components,
      options.batches, options.batch_rows, options.drift_every,
      options.publish_every, options.spool.empty()
                                 ? "in-memory install"
                                 : ("spool " + options.spool).c_str());
  if (options.checkpoint_every > 0) {
    std::printf("checkpointing every %zu batches to %s\n",
                options.checkpoint_every, options.checkpoint_path.c_str());
  }

  auto summary = pipeline.Run(
      [&]() -> std::optional<spca::dist::DistMatrix> {
        return stream.NextBatch();
      },
      [&]() { return stream.basis(); });
  if (options.serve_concurrency > 0) traffic.Stop();
  service.Stop();
  if (!summary.ok()) {
    std::fprintf(stderr, "error: %s\n", summary.status().ToString().c_str());
    return 1;
  }

  const auto& run = summary.value();
  std::printf("ingested %llu rows in %zu batches (%.0f rows/sec), "
              "%zu hot swaps (%zu failed), %zu drift events\n",
              static_cast<unsigned long long>(run.rows_ingested), run.batches,
              run.wall_seconds > 0.0 ? run.rows_ingested / run.wall_seconds
                                     : 0.0,
              run.publishes, run.publish_failures, stream.drifts_applied());
  if (options.checkpoint_every > 0) {
    std::printf("wrote %zu checkpoints to %s\n", run.checkpoints,
                options.checkpoint_path.c_str());
  }
  double previous_angle = -1.0;
  for (const auto& publish : run.publish_log) {
    const double degrees = publish.angle_to_reference_rad * 180.0 /
                           3.14159265358979323846;
    std::printf("  swap gen %llu after batch %zu: angle to true basis "
                "%6.2f deg%s, swap latency %.2f ms%s\n",
                static_cast<unsigned long long>(publish.generation),
                publish.after_batches, degrees,
                previous_angle >= 0.0
                    ? (degrees < previous_angle ? " (improved)" : " (drifted)")
                    : "",
                publish.swap_latency_sec * 1e3, publish.ok ? "" : " FAILED");
    previous_angle = degrees;
  }
  if (options.serve_concurrency > 0) {
    std::printf("query traffic: %llu ok, %llu before first swap (no model), "
                "%llu other\n",
                static_cast<unsigned long long>(traffic.ok.load()),
                static_cast<unsigned long long>(traffic.no_model.load()),
                static_cast<unsigned long long>(traffic.other.load()));
  }
  const auto info = models.GetInfo(options.name);
  if (info.has_value()) {
    std::printf("served model '%s': generation %llu, age %.2f s\n",
                options.name.c_str(),
                static_cast<unsigned long long>(info->generation),
                info->age_seconds);
  }

  if (options.print_metrics) {
    models.RefreshAgeMetrics();
    std::printf("\n%s", spca::obs::MetricsTable(registry).c_str());
  }
  if (options.require_swaps > 0 && run.publishes < options.require_swaps) {
    std::fprintf(stderr, "error: required %zu hot swaps, got %zu\n",
                 options.require_swaps, run.publishes);
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return Main(argc, argv); }
