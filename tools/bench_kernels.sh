#!/usr/bin/env bash
# Kernel-layer perf regression gate. Runs the naive-vs-kernel micro
# benchmark pairs in bench_micro_linalg plus a fixed end-to-end sPCA
# workload, emits BENCH_kernels.json recording ns/op for each pair, the
# speedups, and the per-iteration wall_seconds from the spca.em_iteration
# spans — and exits non-zero when a headline kernel (the d=50 sparse row
# product, the XtX rank-1 update) falls below 2x over the pre-kernel
# scalar loops. The first checked-in BENCH_kernels.json (from the PR that
# introduced the kernel layer) is the baseline of the perf trajectory.
#
# Timing on shared CI runners is noisy, so a failed gate re-measures up to
# BENCH_KERNELS_ATTEMPTS times (default 2) before failing the job.
#
# Usage: tools/bench_kernels.sh [build_dir] [output_json]
set -euo pipefail

BUILD_DIR="${1:-build}"
OUT="${2:-BENCH_kernels.json}"
ATTEMPTS="${BENCH_KERNELS_ATTEMPTS:-2}"
cd "$(dirname "$0")/.."

if [[ ! -x "$BUILD_DIR/bench/bench_micro_linalg" ]]; then
  echo "bench_micro_linalg not built in $BUILD_DIR; configure with" >&2
  echo "  cmake -B $BUILD_DIR -S . -DCMAKE_BUILD_TYPE=Release && cmake --build $BUILD_DIR -j" >&2
  exit 1
fi

MICRO_JSON="$(mktemp)"
TRACE_JSON="$(mktemp)"
trap 'rm -f "$MICRO_JSON" "$TRACE_JSON"' EXIT

measure_and_gate() {
  "$BUILD_DIR/bench/bench_micro_linalg" \
    --benchmark_filter='Naive|Kernel' \
    --benchmark_min_time=0.2 \
    --benchmark_format=json >"$MICRO_JSON"

  # Fixed end-to-end workload: the tweets-shaped sparse fit the verify
  # drive uses, with wall_seconds read off the spca.em_iteration spans.
  "$BUILD_DIR/tools/spca_cli" --generate=tweets --rows=2000 --cols=300 \
    --components=10 --iterations=3 --target=2.0 \
    --trace-out="$TRACE_JSON" >/dev/null

  python3 - "$MICRO_JSON" "$TRACE_JSON" "$OUT" <<'EOF'
import json
import sys

micro_path, trace_path, out_path = sys.argv[1:4]

micro = json.load(open(micro_path))
bench_ns = {}
for b in micro.get("benchmarks", []):
    if b.get("run_type") == "aggregate":
        continue
    bench_ns[b["name"]] = b["real_time"]  # already ns (time_unit default)

pairs = {}
for name, ns in sorted(bench_ns.items()):
    if not name.startswith("BM_Naive"):
        continue
    kernel_name = name.replace("BM_Naive", "BM_Kernel", 1)
    if kernel_name not in bench_ns:
        continue
    pairs[name.removeprefix("BM_Naive")] = {
        "naive_ns_per_op": round(ns, 2),
        "kernel_ns_per_op": round(bench_ns[kernel_name], 2),
        "speedup": round(ns / bench_ns[kernel_name], 3),
    }

trace = json.load(open(trace_path))
iters = [
    e["args"]["wall_seconds"]
    for e in trace.get("traceEvents", [])
    if e.get("name") == "spca.em_iteration" and "wall_seconds" in e.get("args", {})
]

result = {
    "schema": "spca.bench_kernels.v1",
    "workload": {
        "micro": "bench_micro_linalg --benchmark_filter=Naive|Kernel",
        "end_to_end": ("spca_cli --generate=tweets --rows=2000 --cols=300 "
                       "--components=10 --iterations=3 --target=2.0"),
    },
    "kernel_pairs": pairs,
    "end_to_end": {
        "em_iterations": len(iters),
        "wall_seconds_per_iteration": [round(w, 6) for w in iters],
        "wall_seconds_total": round(sum(iters), 6),
    },
}

# The headline gate: the hot-path shapes (d=50 sparse row product, the
# XtX rank-1 update) must hold >= 2x over the pre-kernel scalar loops.
headline = {k: v["speedup"] for k, v in pairs.items()
            if k in ("SparseRowDense/100", "Rank1Update/50")}
result["headline_speedups"] = headline

with open(out_path, "w") as f:
    json.dump(result, f, indent=2)
    f.write("\n")

print(f"wrote {out_path}")
for k, v in pairs.items():
    print(f"  {k:28s} naive {v['naive_ns_per_op']:>10.1f} ns  "
          f"kernel {v['kernel_ns_per_op']:>10.1f} ns  {v['speedup']:.2f}x")
low = {k: s for k, s in headline.items() if s < 2.0}
if low:
    print(f"GATE FAILED: headline kernels below 2x: {low}")
    sys.exit(1)
EOF
}

for attempt in $(seq 1 "$ATTEMPTS"); do
  if measure_and_gate; then
    exit 0
  fi
  if [[ "$attempt" -lt "$ATTEMPTS" ]]; then
    echo "headline gate failed (attempt $attempt/$ATTEMPTS); re-measuring..." >&2
  fi
done
echo "headline kernel speedups stayed below 2x after $ATTEMPTS attempts" >&2
exit 1
