#!/usr/bin/env bash
# Kernel-layer perf regression gate. Runs the naive-vs-kernel micro
# benchmark pairs in bench_micro_linalg twice — once under the runtime
# dispatcher's native ISA pick and once forced to the scalar kernels via
# SPCA_KERNEL_ISA=scalar — plus a fixed end-to-end sPCA workload, and
# emits BENCH_kernels.json (schema spca.bench_kernels.v2) recording the
# dispatched ISA, per-ISA ns/op for every pair, the speedups, and the
# per-iteration wall_seconds from the spca.em_iteration spans.
#
# The headline gate scales with the dispatched ISA:
#   - SIMD dispatch (avx2/neon): the d=50 sparse row product, the d=50
#     XtX rank-1 update, and the dense row-GEMM must hold >= 4x over the
#     pre-kernel naive loops, and the small-d (d=10) rank-1 update must
#     hold >= 1.5x (it is store-bound, not FMA-bound, at that size).
#   - Scalar dispatch (SPCA_SIMD=OFF builds or scalar-only hosts): the
#     original 2x gate on the two original headline shapes.
#
# Timing on shared CI runners is noisy, so a failed gate re-measures up to
# BENCH_KERNELS_ATTEMPTS times (default 2) before failing the job.
#
# Usage: tools/bench_kernels.sh [build_dir] [output_json]
set -euo pipefail

BUILD_DIR="${1:-build}"
OUT="${2:-BENCH_kernels.json}"
ATTEMPTS="${BENCH_KERNELS_ATTEMPTS:-2}"
cd "$(dirname "$0")/.."

if [[ ! -x "$BUILD_DIR/bench/bench_micro_linalg" ]]; then
  echo "bench_micro_linalg not built in $BUILD_DIR; configure with" >&2
  echo "  cmake -B $BUILD_DIR -S . -DCMAKE_BUILD_TYPE=Release && cmake --build $BUILD_DIR -j" >&2
  exit 1
fi

MICRO_JSON="$(mktemp)"
SCALAR_JSON="$(mktemp)"
TRACE_JSON="$(mktemp)"
trap 'rm -f "$MICRO_JSON" "$SCALAR_JSON" "$TRACE_JSON"' EXIT

measure_and_gate() {
  # Native dispatch: naive references plus dispatched kernels. The bench
  # binary records the resolved ISA as spca_kernel_isa in the JSON
  # context block.
  "$BUILD_DIR/bench/bench_micro_linalg" \
    --benchmark_filter='Naive|Kernel' \
    --benchmark_min_time=0.2 \
    --benchmark_format=json >"$MICRO_JSON"

  # Forced-scalar leg: kernel side only (the naive loops don't dispatch),
  # giving the per-ISA ns/op columns even on SIMD hosts.
  SPCA_KERNEL_ISA=scalar "$BUILD_DIR/bench/bench_micro_linalg" \
    --benchmark_filter='Kernel' \
    --benchmark_min_time=0.2 \
    --benchmark_format=json >"$SCALAR_JSON"

  # Fixed end-to-end workload: the tweets-shaped sparse fit the verify
  # drive uses, with wall_seconds read off the spca.em_iteration spans.
  "$BUILD_DIR/tools/spca_cli" --generate=tweets --rows=2000 --cols=300 \
    --components=10 --iterations=3 --target=2.0 \
    --trace-out="$TRACE_JSON" >/dev/null

  python3 - "$MICRO_JSON" "$SCALAR_JSON" "$TRACE_JSON" "$OUT" <<'EOF'
import json
import sys

micro_path, scalar_path, trace_path, out_path = sys.argv[1:5]


def bench_times(path):
    doc = json.load(open(path))
    times = {}
    for b in doc.get("benchmarks", []):
        if b.get("run_type") == "aggregate":
            continue
        times[b["name"]] = b["real_time"]  # already ns (time_unit default)
    return doc, times


micro, bench_ns = bench_times(micro_path)
_, scalar_ns = bench_times(scalar_path)

isa = micro.get("context", {}).get("spca_kernel_isa", "unknown")

pairs = {}
for name, ns in sorted(bench_ns.items()):
    if not name.startswith("BM_Naive"):
        continue
    kernel_name = name.replace("BM_Naive", "BM_Kernel", 1)
    if kernel_name not in bench_ns:
        continue
    shape = name.removeprefix("BM_Naive")
    per_isa = {isa: round(bench_ns[kernel_name], 2)}
    if kernel_name in scalar_ns and isa != "scalar":
        per_isa["scalar"] = round(scalar_ns[kernel_name], 2)
    pairs[shape] = {
        "naive_ns_per_op": round(ns, 2),
        "kernel_ns_per_op": per_isa,
        "speedup": round(ns / bench_ns[kernel_name], 3),
    }

trace = json.load(open(trace_path))
iters = [
    e["args"]["wall_seconds"]
    for e in trace.get("traceEvents", [])
    if e.get("name") == "spca.em_iteration" and "wall_seconds" in e.get("args", {})
]

# Headline gates (see header comment): 4x on the hot d=50 shapes under
# SIMD dispatch with a 1.5x floor on the store-bound small-d rank-1
# update; the original 2x gate when dispatch resolved to scalar.
if isa == "scalar":
    gates = {"SparseRowDense/100": 2.0, "Rank1Update/50": 2.0}
else:
    gates = {
        "SparseRowDense/100": 4.0,
        "Rank1Update/50": 4.0,
        "DenseRowGemm/2000": 4.0,
        "Rank1Update/10": 1.5,
    }

headline = {k: pairs[k]["speedup"] for k in gates if k in pairs}

result = {
    "schema": "spca.bench_kernels.v2",
    "dispatched_isa": isa,
    "workload": {
        "micro": "bench_micro_linalg --benchmark_filter=Naive|Kernel"
                 " (plus a SPCA_KERNEL_ISA=scalar kernel-only pass)",
        "end_to_end": ("spca_cli --generate=tweets --rows=2000 --cols=300 "
                       "--components=10 --iterations=3 --target=2.0"),
    },
    "kernel_pairs": pairs,
    "headline_speedups": headline,
    "headline_gates": gates,
    "end_to_end": {
        "em_iterations": len(iters),
        "wall_seconds_per_iteration": [round(w, 6) for w in iters],
        "wall_seconds_total": round(sum(iters), 6),
    },
}

with open(out_path, "w") as f:
    json.dump(result, f, indent=2)
    f.write("\n")

print(f"wrote {out_path} (dispatched ISA: {isa})")
for k, v in pairs.items():
    per_isa = "  ".join(f"{i} {ns:>9.1f} ns" for i, ns in
                        v["kernel_ns_per_op"].items())
    print(f"  {k:28s} naive {v['naive_ns_per_op']:>10.1f} ns  "
          f"{per_isa}  {v['speedup']:.2f}x")
missing = [k for k in gates if k not in pairs]
low = {k: (headline[k], gates[k]) for k in headline if headline[k] < gates[k]}
if missing:
    print(f"GATE FAILED: headline shapes missing from bench run: {missing}")
    sys.exit(1)
if low:
    print("GATE FAILED: headline kernels below threshold: " +
          ", ".join(f"{k} {s:.2f}x < {g}x" for k, (s, g) in low.items()))
    sys.exit(1)
EOF
}

for attempt in $(seq 1 "$ATTEMPTS"); do
  if measure_and_gate; then
    exit 0
  fi
  if [[ "$attempt" -lt "$ATTEMPTS" ]]; then
    echo "headline gate failed (attempt $attempt/$ATTEMPTS); re-measuring..." >&2
  fi
done
echo "headline kernel speedups stayed below the gate after $ATTEMPTS attempts" >&2
exit 1
