#!/usr/bin/env sh
# Fails (exit 1) if any C++ source under src/, tests/, bench/, examples/, or
# tools/ deviates from the repository .clang-format style. Run from anywhere;
# pass --fix to rewrite files in place instead of just checking.
#
# Usage:
#   tools/check_format.sh          # check, list offending files
#   tools/check_format.sh --fix    # reformat in place

set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
cd "$repo_root"

clang_format=${CLANG_FORMAT:-}
if [ -z "$clang_format" ]; then
  for candidate in clang-format clang-format-19 clang-format-18 \
      clang-format-17 clang-format-16 clang-format-15 clang-format-14; do
    if command -v "$candidate" >/dev/null 2>&1; then
      clang_format=$candidate
      break
    fi
  done
fi
if [ -z "$clang_format" ]; then
  echo "check_format: clang-format not found; skipping (set CLANG_FORMAT to override)" >&2
  exit 0
fi

mode=check
if [ "${1:-}" = "--fix" ]; then
  mode=fix
fi

files=$(find src tests bench examples tools \
  \( -name '*.cc' -o -name '*.h' \) -type f | sort)

if [ "$mode" = "fix" ]; then
  # shellcheck disable=SC2086
  "$clang_format" -i $files
  echo "check_format: reformatted $(echo "$files" | wc -l) files"
  exit 0
fi

bad=0
for f in $files; do
  if ! "$clang_format" --dry-run -Werror "$f" >/dev/null 2>&1; then
    echo "needs formatting: $f"
    bad=1
  fi
done
if [ "$bad" -ne 0 ]; then
  echo "check_format: run tools/check_format.sh --fix" >&2
  exit 1
fi
echo "check_format: all files clean"
