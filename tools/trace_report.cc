// trace_report — regenerate the paper's accuracy-vs-time tables (Figures
// 4/5) and a per-phase breakdown from a trace file alone, without rerunning
// the benchmark that produced it.
//
// Accepts either trace format the repository writes:
//   * Chrome trace-event JSON   (spca_cli --trace-out, bench --trace-out)
//   * streamed JSON-lines       (spca_cli --trace-stream, bench
//                                --trace-stream)
//
// Examples:
//   spca_cli --generate biotext --components 10 --trace-stream run.jsonl
//   trace_report run.jsonl

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "obs/trace_file.h"
#include "obs/trace_report.h"

namespace {

constexpr const char* kUsage =
    R"(usage: trace_report TRACE_FILE...
       trace_report --flame TRACE_FILE...
       trace_report --crossover TRACE_FILE...
       trace_report --diff TRACE_A TRACE_B [--tolerance FRACTION]

Reads Chrome trace-event JSON (--trace-out) or streamed JSON-lines
(--trace-stream) files and prints, per file:
  * the accuracy-vs-time table for every spca.fit recorded in the trace
    (the Figure 4/5 rows, regenerated from span attributes alone)
  * a per-phase job/sim-seconds breakdown (from the engine.phase.* counters
    when the trace carries metrics, else aggregated from the job spans)

--flame prints a text flame graph of the simulated-time track instead:
sim spans merged by their full name path, siblings with the same name
collapsed with an " xN" count, children sorted by total sim-seconds.

--crossover regenerates the Figure 4/5 cost-crossover table instead: one
row per solver.fit summary span (written by bench_sketch), byte-identical
to the table the benchmark printed when it ran.

--diff compares two traces' per-phase simulated seconds and prints a
delta table. Exit status is 3 when any phase's |B-A|/A exceeds
--tolerance (default 0: any per-phase difference fails) — a trace-level
regression gate for CI.
)";

int DiffTraces(const char* path_a, const char* path_b, double tolerance) {
  auto trace_a = spca::obs::LoadTraceFile(path_a);
  auto trace_b = spca::obs::LoadTraceFile(path_b);
  for (const auto* loaded : {&trace_a, &trace_b}) {
    if (!loaded->ok()) {
      std::fprintf(stderr, "error: %s\n",
                   loaded->status().ToString().c_str());
      return 1;
    }
  }
  const spca::obs::PhaseDiffResult diff =
      spca::obs::PhaseBreakdownDiff(trace_a.value(), trace_b.value());
  std::printf("A: %s\nB: %s\n%s", path_a, path_b, diff.table.c_str());
  if (diff.max_relative_delta > tolerance) {
    std::printf("FAIL: phase '%s' differs by %.2f%% (> %.2f%% tolerance)\n",
                diff.worst_phase.c_str(), 100.0 * diff.max_relative_delta,
                100.0 * tolerance);
    return 3;
  }
  std::printf("OK: max per-phase delta %.2f%% within %.2f%% tolerance\n",
              100.0 * diff.max_relative_delta, 100.0 * tolerance);
  return 0;
}

enum class ReportMode { kDefault, kFlame, kCrossover };

int ReportOne(const char* path, bool print_heading, ReportMode mode) {
  auto trace = spca::obs::LoadTraceFile(path);
  if (!trace.ok()) {
    std::fprintf(stderr, "error: %s: %s\n", path,
                 trace.status().ToString().c_str());
    return 1;
  }
  if (print_heading) std::printf("==> %s <==\n", path);
  if (mode == ReportMode::kFlame) {
    std::fputs(spca::obs::FlameGraphReport(trace.value()).c_str(), stdout);
    return 0;
  }
  if (mode == ReportMode::kCrossover) {
    std::fputs(spca::obs::CrossoverReport(trace.value()).c_str(), stdout);
    return 0;
  }
  std::printf("%zu spans\n\n", trace->spans.size());
  std::fputs(spca::obs::AccuracyTimeReport(trace.value()).c_str(), stdout);
  std::printf("\n%s", spca::obs::PhaseBreakdownReport(trace.value()).c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2 || std::strcmp(argv[1], "--help") == 0) {
    std::fputs(kUsage, argc < 2 ? stderr : stdout);
    return argc < 2 ? 2 : 0;
  }
  if (std::strcmp(argv[1], "--diff") == 0) {
    if (argc < 4) {
      std::fputs(kUsage, stderr);
      return 2;
    }
    double tolerance = 0.0;
    if (argc >= 5) {
      if (argc != 6 || std::strcmp(argv[4], "--tolerance") != 0) {
        std::fputs(kUsage, stderr);
        return 2;
      }
      char* end = nullptr;
      tolerance = std::strtod(argv[5], &end);
      if (end == argv[5] || *end != '\0' || !(tolerance >= 0.0)) {
        std::fprintf(stderr, "error: bad --tolerance value '%s'\n", argv[5]);
        return 2;
      }
    }
    return DiffTraces(argv[2], argv[3], tolerance);
  }
  ReportMode mode = ReportMode::kDefault;
  if (std::strcmp(argv[1], "--flame") == 0) mode = ReportMode::kFlame;
  if (std::strcmp(argv[1], "--crossover") == 0) mode = ReportMode::kCrossover;
  const int first = mode == ReportMode::kDefault ? 1 : 2;
  if (first >= argc) {
    std::fputs(kUsage, stderr);
    return 2;
  }
  int exit_code = 0;
  for (int i = first; i < argc; ++i) {
    if (i > first) std::printf("\n");
    if (ReportOne(argv[i], argc - first > 1, mode) != 0) exit_code = 1;
  }
  return exit_code;
}
