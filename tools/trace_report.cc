// trace_report — regenerate the paper's accuracy-vs-time tables (Figures
// 4/5) and a per-phase breakdown from a trace file alone, without rerunning
// the benchmark that produced it.
//
// Accepts either trace format the repository writes:
//   * Chrome trace-event JSON   (spca_cli --trace-out, bench --trace-out)
//   * streamed JSON-lines       (spca_cli --trace-stream, bench
//                                --trace-stream)
//
// Examples:
//   spca_cli --generate biotext --components 10 --trace-stream run.jsonl
//   trace_report run.jsonl

#include <cstdio>
#include <cstring>
#include <string>

#include "obs/trace_file.h"
#include "obs/trace_report.h"

namespace {

constexpr const char* kUsage =
    R"(usage: trace_report TRACE_FILE...

Reads Chrome trace-event JSON (--trace-out) or streamed JSON-lines
(--trace-stream) files and prints, per file:
  * the accuracy-vs-time table for every spca.fit recorded in the trace
    (the Figure 4/5 rows, regenerated from span attributes alone)
  * a per-phase job/sim-seconds breakdown (from the engine.phase.* counters
    when the trace carries metrics, else aggregated from the job spans)
)";

int ReportOne(const char* path, bool print_heading) {
  auto trace = spca::obs::LoadTraceFile(path);
  if (!trace.ok()) {
    std::fprintf(stderr, "error: %s: %s\n", path,
                 trace.status().ToString().c_str());
    return 1;
  }
  if (print_heading) std::printf("==> %s <==\n", path);
  std::printf("%zu spans\n\n", trace->spans.size());
  std::fputs(spca::obs::AccuracyTimeReport(trace.value()).c_str(), stdout);
  std::printf("\n%s", spca::obs::PhaseBreakdownReport(trace.value()).c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2 || std::strcmp(argv[1], "--help") == 0) {
    std::fputs(kUsage, argc < 2 ? stderr : stdout);
    return argc < 2 ? 2 : 0;
  }
  int exit_code = 0;
  for (int i = 1; i < argc; ++i) {
    if (i > 1) std::printf("\n");
    if (ReportOne(argv[i], argc > 2) != 0) exit_code = 1;
  }
  return exit_code;
}
