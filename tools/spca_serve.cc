// spca_serve — serve projection queries against saved PCA models and
// measure latency/throughput under a deterministic generated load.
//
// Train and save a model, then serve it:
//   spca_cli --generate tweets --rows 20000 --cols 2000 --components 50
//            --save-model tweets.spcm
//   spca_serve --model tweets.spcm --threads 4 --batch-max 64
//              --queue-cap 1024 --qps 2000 --duration 5
//
// The load is open-loop by default (Poisson arrivals at --qps, replayed
// from a seeded schedule); --qps 0 switches to closed-loop with
// --concurrency outstanding requests. Models are spread across --shards
// independent service shards by a consistent-hash router, and --listen
// fronts the shards with the SPCQ socket server:
//   spca_serve --model a=a.spcm --model b=b.spcm --shards 4 --listen 7077
// serves the socket for --duration seconds; adding --loopback instead
// drives the configured load through a client against the bound port
// (the full wire round trip, self-contained — used by the smoke tests).
// Run with --help for the full list.

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "net/client.h"
#include "net/server.h"
#include "net/shard_set.h"
#include "obs/export.h"
#include "obs/registry.h"
#include "obs/stream.h"
#include "serve/service.h"
#include "workload/load_gen.h"

namespace {

using spca::Status;

constexpr const char* kUsage = R"(spca_serve — batched PCA projection service

Models:
  --model PATH          model file written by spca_cli --save-model; repeat
                        the flag to serve several (NAME=PATH names one);
                        tenants are pinned round-robin across the models

Service:
  --shards N            independent service shards behind the
                        consistent-hash router (default 1)
  --threads N           worker threads per shard executing batches
                        (default 4)
  --batch-max N         max requests coalesced into one batch (default 64)
  --queue-cap N         per-shard admission queue bound; requests beyond
                        it are shed (default 1024)
  --timeout-sec SEC     per-request deadline while queued (default: none)

Socket front-end:
  --listen PORT         accept SPCQ connections on 127.0.0.1:PORT (0 picks
                        an ephemeral port, printed at startup) and serve
                        for --duration seconds instead of self-driving
  --loopback            with --listen: drive the configured load through a
                        socket client against the bound port, then exit

Load:
  --qps RATE            open-loop offered load, Poisson arrivals (default
                        2000); 0 switches to closed-loop driving
  --duration SEC        measurement / serving length (default 5)
  --concurrency N       closed-loop outstanding requests (default 8)
  --queries N           distinct query rows generated (default 4096)
  --nnz N               mean non-zeros per sparse query (default 12)
  --dense               send dense query rows instead of sparse
  --tenants N           tenant ids drawn Zipf(--tenant-zipf) per query
                        (default 8); tenant t targets model t %% #models
  --tenant-zipf S       tenant popularity skew (default 1.0)
  --burst-factor F      offered-rate multiplier during burst windows
                        (default 1 = flat)
  --burst-period SEC    burst window period; with --burst-duration SEC the
                        first SEC of every period runs at F x qps
  --burst-duration SEC  burst window length within each period
  --seed N              query/schedule seed (default 1)

Observability:
  --metrics             print the metrics registry at exit (includes the
                        serve.latency_sec p50/p95/p99 columns)
  --trace-stream PATH   stream serve.batch spans as JSON-lines while
                        running (single shard only)
  --flush-every N       streaming flush window in batches (default 32)

Flags accept both "--flag value" and "--flag=value".
)";

struct Options {
  std::vector<std::pair<std::string, std::string>> models;  // name, path
  size_t shards = 1;
  size_t threads = 4;
  size_t batch_max = 64;
  size_t queue_cap = 1024;
  double timeout_sec = 0.0;  // <= 0: none
  int listen_port = -1;      // < 0: no socket front-end
  bool loopback = false;
  double qps = 2000.0;
  double duration_sec = 5.0;
  size_t concurrency = 8;
  size_t num_queries = 4096;
  double nnz = 12.0;
  bool dense = false;
  size_t tenants = 8;
  double tenant_zipf = 1.0;
  double burst_factor = 1.0;
  double burst_period_sec = 0.0;
  double burst_duration_sec = 0.0;
  uint64_t seed = 1;
  bool print_metrics = false;
  std::string trace_stream_path;
  size_t flush_every = 32;
};

bool ParseOptions(int argc, char** argv, Options* out) {
  for (int i = 1; i < argc; ++i) {
    std::string flag = argv[i];
    std::string value;
    bool has_value = false;
    if (const size_t eq = flag.find('='); eq != std::string::npos) {
      value = flag.substr(eq + 1);
      flag = flag.substr(0, eq);
      has_value = true;
    }
    auto need_value = [&]() -> bool {
      if (has_value) return true;
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: %s needs a value\n", flag.c_str());
        return false;
      }
      value = argv[++i];
      return true;
    };
    if (flag == "--help") {
      std::fputs(kUsage, stdout);
      std::exit(0);
    } else if (flag == "--metrics") {
      out->print_metrics = true;
    } else if (flag == "--dense") {
      out->dense = true;
    } else if (flag == "--loopback") {
      out->loopback = true;
    } else if (flag == "--model") {
      if (!need_value()) return false;
      // NAME=PATH when the original argument had two '='s the first split
      // already consumed; here value may itself be NAME=PATH.
      std::string name, path;
      if (const size_t eq = value.find('='); eq != std::string::npos) {
        name = value.substr(0, eq);
        path = value.substr(eq + 1);
      } else {
        name = "model" + std::to_string(out->models.size());
        path = value;
      }
      out->models.emplace_back(name, path);
    } else if (flag == "--shards") {
      if (!need_value()) return false;
      out->shards = std::strtoul(value.c_str(), nullptr, 10);
    } else if (flag == "--threads") {
      if (!need_value()) return false;
      out->threads = std::strtoul(value.c_str(), nullptr, 10);
    } else if (flag == "--batch-max") {
      if (!need_value()) return false;
      out->batch_max = std::strtoul(value.c_str(), nullptr, 10);
    } else if (flag == "--queue-cap") {
      if (!need_value()) return false;
      out->queue_cap = std::strtoul(value.c_str(), nullptr, 10);
    } else if (flag == "--timeout-sec") {
      if (!need_value()) return false;
      out->timeout_sec = std::atof(value.c_str());
    } else if (flag == "--listen") {
      if (!need_value()) return false;
      out->listen_port = std::atoi(value.c_str());
    } else if (flag == "--qps") {
      if (!need_value()) return false;
      out->qps = std::atof(value.c_str());
    } else if (flag == "--duration") {
      if (!need_value()) return false;
      out->duration_sec = std::atof(value.c_str());
    } else if (flag == "--concurrency") {
      if (!need_value()) return false;
      out->concurrency = std::strtoul(value.c_str(), nullptr, 10);
    } else if (flag == "--queries") {
      if (!need_value()) return false;
      out->num_queries = std::strtoul(value.c_str(), nullptr, 10);
    } else if (flag == "--nnz") {
      if (!need_value()) return false;
      out->nnz = std::atof(value.c_str());
    } else if (flag == "--tenants") {
      if (!need_value()) return false;
      out->tenants = std::strtoul(value.c_str(), nullptr, 10);
    } else if (flag == "--tenant-zipf") {
      if (!need_value()) return false;
      out->tenant_zipf = std::atof(value.c_str());
    } else if (flag == "--burst-factor") {
      if (!need_value()) return false;
      out->burst_factor = std::atof(value.c_str());
    } else if (flag == "--burst-period") {
      if (!need_value()) return false;
      out->burst_period_sec = std::atof(value.c_str());
    } else if (flag == "--burst-duration") {
      if (!need_value()) return false;
      out->burst_duration_sec = std::atof(value.c_str());
    } else if (flag == "--seed") {
      if (!need_value()) return false;
      out->seed = std::strtoull(value.c_str(), nullptr, 10);
    } else if (flag == "--trace-stream") {
      if (!need_value()) return false;
      out->trace_stream_path = value;
    } else if (flag == "--flush-every") {
      if (!need_value()) return false;
      out->flush_every = std::strtoul(value.c_str(), nullptr, 10);
    } else {
      std::fprintf(stderr, "error: unknown flag %s\n%s", flag.c_str(), kUsage);
      return false;
    }
  }
  if (out->models.empty()) {
    std::fprintf(stderr, "error: need at least one --model\n%s", kUsage);
    return false;
  }
  if (out->shards == 0 || out->threads == 0 || out->batch_max == 0 ||
      out->concurrency == 0 || out->num_queries == 0 || out->tenants == 0 ||
      out->duration_sec <= 0.0) {
    std::fprintf(stderr,
                 "error: --shards/--threads/--batch-max/--concurrency/"
                 "--queries/--tenants must be positive and --duration > 0\n");
    return false;
  }
  if (out->listen_port > 65535) {
    std::fprintf(stderr, "error: --listen port out of range\n");
    return false;
  }
  if (out->loopback && out->listen_port < 0) {
    std::fprintf(stderr, "error: --loopback requires --listen\n");
    return false;
  }
  if (!out->trace_stream_path.empty() && out->shards != 1) {
    std::fprintf(stderr,
                 "error: --trace-stream supports a single shard (one "
                 "dispatcher driving the stream)\n");
    return false;
  }
  return true;
}

struct OutcomeCounts {
  std::atomic<uint64_t> ok{0};
  std::atomic<uint64_t> shed{0};
  std::atomic<uint64_t> deadline{0};
  std::atomic<uint64_t> other{0};

  void Count(spca::serve::RequestOutcome outcome) {
    switch (outcome) {
      case spca::serve::RequestOutcome::kOk:
        ++ok;
        break;
      case spca::serve::RequestOutcome::kShed:
        ++shed;
        break;
      case spca::serve::RequestOutcome::kDeadlineExceeded:
        ++deadline;
        break;
      default:
        ++other;
        break;
    }
  }
  uint64_t Total() const { return ok + shed + deadline + other; }
};

spca::serve::ProjectionRequest MakeRequest(
    const std::string& model, uint64_t tenant,
    const spca::workload::Query& query, double timeout_sec) {
  spca::serve::ProjectionRequest request;
  request.model = model;
  request.tenant = tenant;
  if (query.is_dense()) {
    request.dense = query.dense;
  } else {
    request.sparse = query.sparse;
  }
  if (timeout_sec > 0.0) request.timeout_sec = timeout_sec;
  return request;
}

/// Replays the seeded arrival schedule in real time, one Submit per
/// arrival, then waits for every response. Returns measured seconds.
double RunOpenLoop(spca::net::ShardSet* shards,
                   const std::vector<std::string>& model_names,
                   const std::vector<spca::workload::TaggedQuery>& queries,
                   const std::vector<double>& schedule, double timeout_sec,
                   OutcomeCounts* counts) {
  std::vector<std::future<spca::serve::ProjectionResponse>> futures;
  futures.reserve(schedule.size());
  const auto start = std::chrono::steady_clock::now();
  for (size_t i = 0; i < schedule.size(); ++i) {
    const auto arrival =
        start + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                    std::chrono::duration<double>(schedule[i]));
    std::this_thread::sleep_until(arrival);
    const auto& tagged = queries[i % queries.size()];
    futures.push_back(shards->Submit(MakeRequest(
        model_names[tagged.model_index], tagged.tenant, tagged.query,
        timeout_sec)));
  }
  for (auto& future : futures) counts->Count(future.get().outcome);
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// --qps 0: N driver threads each keep one request outstanding until the
/// measurement window closes.
double RunClosedLoop(spca::net::ShardSet* shards,
                     const std::vector<std::string>& model_names,
                     const std::vector<spca::workload::TaggedQuery>& queries,
                     double duration_sec, size_t concurrency,
                     double timeout_sec, OutcomeCounts* counts) {
  const auto start = std::chrono::steady_clock::now();
  const auto deadline =
      start + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                  std::chrono::duration<double>(duration_sec));
  std::vector<std::thread> drivers;
  drivers.reserve(concurrency);
  for (size_t t = 0; t < concurrency; ++t) {
    drivers.emplace_back([&, t] {
      size_t i = t;  // stagger which query each driver cycles through
      while (std::chrono::steady_clock::now() < deadline) {
        const auto& tagged = queries[i % queries.size()];
        auto future = shards->Submit(MakeRequest(
            model_names[tagged.model_index], tagged.tenant, tagged.query,
            timeout_sec));
        counts->Count(future.get().outcome);
        i += concurrency;
      }
    });
  }
  for (auto& driver : drivers) driver.join();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

void QueueTagged(spca::net::Client* client, uint64_t request_id,
                 const std::vector<std::string>& model_names,
                 const spca::workload::TaggedQuery& tagged) {
  const std::string& model = model_names[tagged.model_index];
  if (tagged.query.is_dense()) {
    client->QueueDense(tagged.tenant, request_id, model, tagged.query.dense);
  } else {
    client->QueueSparse(tagged.tenant, request_id, model,
                        tagged.query.sparse.View());
  }
}

/// Open loop over the socket: the main thread ships frames per the
/// arrival schedule, a receiver thread counts every response. One write
/// and one read stream on the same connection are safe from two threads —
/// the client keeps separate send/receive buffers.
double RunOpenLoopSocket(uint16_t port,
                         const std::vector<std::string>& model_names,
                         const std::vector<spca::workload::TaggedQuery>& queries,
                         const std::vector<double>& schedule,
                         OutcomeCounts* counts) {
  spca::net::Client client;
  const Status status = client.Connect("127.0.0.1", port);
  if (!status.ok()) {
    std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
    std::exit(1);
  }
  std::atomic<bool> receiver_failed{false};
  std::thread receiver([&] {
    spca::net::ClientResponse response;
    for (size_t i = 0; i < schedule.size(); ++i) {
      const Status recv = client.Receive(&response);
      if (!recv.ok()) {
        std::fprintf(stderr, "error: %s\n", recv.ToString().c_str());
        receiver_failed = true;
        return;
      }
      counts->Count(response.outcome);
    }
  });
  const auto start = std::chrono::steady_clock::now();
  for (size_t i = 0; i < schedule.size() && !receiver_failed; ++i) {
    const auto arrival =
        start + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                    std::chrono::duration<double>(schedule[i]));
    std::this_thread::sleep_until(arrival);
    QueueTagged(&client, i + 1, model_names, queries[i % queries.size()]);
    const Status flush = client.Flush();
    if (!flush.ok()) {
      std::fprintf(stderr, "error: %s\n", flush.ToString().c_str());
      std::exit(1);
    }
  }
  receiver.join();
  if (receiver_failed) std::exit(1);
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// Closed loop over the socket: one pipelined connection per driver
/// thread, --concurrency/driver requests outstanding.
double RunClosedLoopSocket(uint16_t port,
                           const std::vector<std::string>& model_names,
                           const std::vector<spca::workload::TaggedQuery>&
                               queries,
                           double duration_sec, size_t concurrency,
                           OutcomeCounts* counts) {
  const auto start = std::chrono::steady_clock::now();
  const auto deadline =
      start + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                  std::chrono::duration<double>(duration_sec));
  std::vector<std::thread> drivers;
  drivers.reserve(concurrency);
  for (size_t t = 0; t < concurrency; ++t) {
    drivers.emplace_back([&, t] {
      spca::net::Client client;
      if (!client.Connect("127.0.0.1", port).ok()) return;
      size_t i = t;
      spca::net::ClientResponse response;
      while (std::chrono::steady_clock::now() < deadline) {
        QueueTagged(&client, i + 1, model_names, queries[i % queries.size()]);
        if (!client.Flush().ok() || !client.Receive(&response).ok()) return;
        counts->Count(response.outcome);
        i += concurrency;
      }
    });
  }
  for (auto& driver : drivers) driver.join();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

int Main(int argc, char** argv) {
  Options options;
  if (!ParseOptions(argc, argv, &options)) return 2;

  spca::obs::Registry registry;
  spca::obs::TraceStreamer streamer(&registry, options.flush_every);
  if (!options.trace_stream_path.empty()) {
    const Status status = streamer.Open(options.trace_stream_path);
    if (!status.ok()) {
      std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
      return 1;
    }
  }

  spca::net::ShardSetOptions shard_options;
  shard_options.num_shards = options.shards;
  shard_options.service.num_threads = options.threads;
  shard_options.service.batch_max = options.batch_max;
  shard_options.service.queue_capacity = options.queue_cap;
  // The dispatcher is the only thread completing "jobs" here (single
  // shard enforced at parse time), so it may drive the streaming
  // exporter directly.
  shard_options.service.notify_job_listener = streamer.is_open();
  shard_options.metrics = &registry;
  spca::net::ShardSet shards(shard_options);
  {
    const Status status = shards.Start();
    if (!status.ok()) {
      std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
      return 1;
    }
  }

  std::vector<std::string> model_names;
  for (const auto& [name, path] : options.models) {
    const Status status = shards.LoadModel(name, path);
    if (!status.ok()) {
      std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
      return 1;
    }
    const auto projector = shards.GetModel(name);
    std::printf("model %s: %s, %zu x %zu, noise variance %.6g, shard %zu\n",
                name.c_str(), path.c_str(), projector->input_dim(),
                projector->num_components(), projector->model().noise_variance,
                shards.ShardOf(name));
    model_names.push_back(name);
  }
  const size_t dim = shards.GetModel(model_names.front())->input_dim();
  for (const auto& name : model_names) {
    if (shards.GetModel(name)->input_dim() != dim) {
      std::fprintf(stderr,
                   "error: all models must share input_dim to serve one "
                   "query set (%s differs)\n",
                   name.c_str());
      return 1;
    }
  }

  spca::workload::TenantMixConfig mix_config;
  mix_config.num_tenants = options.tenants;
  mix_config.tenant_zipf_exponent = options.tenant_zipf;
  mix_config.models = model_names;
  mix_config.query.num_queries = options.num_queries;
  mix_config.query.dim = dim;
  mix_config.query.dense = options.dense;
  mix_config.query.nnz_per_query = options.nnz;
  mix_config.query.seed = options.seed;
  const std::vector<spca::workload::TaggedQuery> queries =
      spca::workload::GenerateTenantMix(mix_config);

  std::unique_ptr<spca::net::SocketServer> server;
  if (options.listen_port >= 0) {
    spca::net::ServerOptions server_options;
    server_options.port = static_cast<uint16_t>(options.listen_port);
    server_options.metrics = &registry;
    server = std::make_unique<spca::net::SocketServer>(&shards,
                                                       server_options);
    const Status status = server->Start();
    if (!status.ok()) {
      std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
      return 1;
    }
    std::printf("listening on 127.0.0.1:%u (%zu shards)\n",
                unsigned{server->port()}, shards.num_shards());
    std::fflush(stdout);
  }

  OutcomeCounts counts;
  double elapsed = options.duration_sec;
  const bool self_drive = options.listen_port < 0 || options.loopback;
  if (!self_drive) {
    // Front-end mode: serve the socket for the duration, then exit.
    std::this_thread::sleep_for(
        std::chrono::duration<double>(options.duration_sec));
  } else if (options.qps > 0.0) {
    spca::workload::ArrivalScheduleConfig schedule_config;
    schedule_config.qps = options.qps;
    schedule_config.num_arrivals = static_cast<size_t>(options.qps *
                                                       options.duration_sec);
    schedule_config.seed = options.seed;
    schedule_config.burst_factor = options.burst_factor;
    schedule_config.burst_period_sec = options.burst_period_sec;
    schedule_config.burst_duration_sec = options.burst_duration_sec;
    const std::vector<double> schedule =
        spca::workload::GenerateArrivalSchedule(schedule_config);
    std::printf("open loop%s: %zu arrivals at %.0f qps offered (seed %llu, "
                "%zu tenants, zipf %.2f)\n",
                options.loopback ? " over socket" : "", schedule.size(),
                options.qps, static_cast<unsigned long long>(options.seed),
                options.tenants, options.tenant_zipf);
    elapsed = options.loopback
                  ? RunOpenLoopSocket(server->port(), model_names, queries,
                                      schedule, &counts)
                  : RunOpenLoop(&shards, model_names, queries, schedule,
                                options.timeout_sec, &counts);
  } else {
    std::printf("closed loop%s: %zu outstanding for %.1f s\n",
                options.loopback ? " over socket" : "", options.concurrency,
                options.duration_sec);
    elapsed = options.loopback
                  ? RunClosedLoopSocket(server->port(), model_names, queries,
                                        options.duration_sec,
                                        options.concurrency, &counts)
                  : RunClosedLoop(&shards, model_names, queries,
                                  options.duration_sec, options.concurrency,
                                  options.timeout_sec, &counts);
  }
  if (server != nullptr) server->Stop();
  shards.Stop();

  const auto* latency = registry.FindHistogram("serve.latency_sec");
  const auto* batches = registry.FindCounter("serve.batches");
  if (self_drive) {
    std::printf(
        "served %llu requests in %.2f s: %llu ok (%.0f qps), %llu shed, "
        "%llu deadline-exceeded, %llu other\n",
        static_cast<unsigned long long>(counts.Total()), elapsed,
        static_cast<unsigned long long>(counts.ok.load()),
        static_cast<double>(counts.ok.load()) / elapsed,
        static_cast<unsigned long long>(counts.shed.load()),
        static_cast<unsigned long long>(counts.deadline.load()),
        static_cast<unsigned long long>(counts.other.load()));
  } else {
    const auto* frames = registry.FindCounter("net.frames_in");
    std::printf("served socket for %.2f s: %llu frames\n", elapsed,
                static_cast<unsigned long long>(
                    frames != nullptr ? frames->AsUint64() : 0));
  }
  if (latency != nullptr && latency->count() > 0) {
    std::printf("latency: p50 %.3f ms, p95 %.3f ms, p99 %.3f ms, max %.3f ms "
                "(%llu batches, mean batch %.1f)\n",
                1e3 * latency->Quantile(0.50), 1e3 * latency->Quantile(0.95),
                1e3 * latency->Quantile(0.99), 1e3 * latency->max(),
                static_cast<unsigned long long>(
                    batches != nullptr ? batches->AsUint64() : 0),
                batches != nullptr && batches->value() > 0
                    ? static_cast<double>(counts.ok.load()) / batches->value()
                    : 0.0);
  }

  if (streamer.is_open()) {
    const Status status = streamer.Close();
    if (!status.ok()) {
      std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
      return 1;
    }
    std::printf("streamed %zu spans in %zu flushes to %s\n",
                streamer.spans_written(), streamer.flushes(),
                streamer.path().c_str());
  }
  if (options.print_metrics) {
    // Age gauges are only as fresh as the last swap; re-publish them so the
    // table shows each model's age as of now.
    for (size_t s = 0; s < shards.num_shards(); ++s) {
      shards.shard_models(s)->RefreshAgeMetrics();
    }
    std::printf("\n%s", spca::obs::MetricsTable(registry).c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return Main(argc, argv); }
