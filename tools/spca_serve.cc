// spca_serve — serve projection queries against saved PCA models and
// measure latency/throughput under a deterministic generated load.
//
// Train and save a model, then serve it:
//   spca_cli --generate tweets --rows 20000 --cols 2000 --components 50
//            --save-model tweets.spcm
//   spca_serve --model tweets.spcm --threads 4 --batch-max 64
//              --queue-cap 1024 --qps 2000 --duration 5
//
// The load is open-loop by default (Poisson arrivals at --qps, replayed
// from a seeded schedule); --qps 0 switches to closed-loop with
// --concurrency outstanding requests. Run with --help for the full list.

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "obs/export.h"
#include "obs/registry.h"
#include "obs/stream.h"
#include "serve/model_registry.h"
#include "serve/service.h"
#include "workload/load_gen.h"

namespace {

using spca::Status;

constexpr const char* kUsage = R"(spca_serve — batched PCA projection service

Models:
  --model PATH          model file written by spca_cli --save-model; repeat
                        the flag to serve several (NAME=PATH names one —
                        queries target the first model's name by default)

Service:
  --threads N           worker threads executing batches (default 4)
  --batch-max N         max requests coalesced into one batch (default 64)
  --queue-cap N         admission-control queue bound; requests beyond it
                        are shed (default 1024)
  --timeout-sec SEC     per-request deadline while queued (default: none)

Load:
  --qps RATE            open-loop offered load, Poisson arrivals (default
                        2000); 0 switches to closed-loop driving
  --duration SEC        measurement length (default 5)
  --concurrency N       closed-loop outstanding requests (default 8)
  --queries N           distinct query rows generated (default 4096)
  --nnz N               mean non-zeros per sparse query (default 12)
  --dense               send dense query rows instead of sparse
  --seed N              query/schedule seed (default 1)

Observability:
  --metrics             print the metrics registry at exit (includes the
                        serve.latency_sec p50/p95/p99 columns)
  --trace-stream PATH   stream serve.batch spans as JSON-lines while running
  --flush-every N       streaming flush window in batches (default 32)

Flags accept both "--flag value" and "--flag=value".
)";

struct Options {
  std::vector<std::pair<std::string, std::string>> models;  // name, path
  size_t threads = 4;
  size_t batch_max = 64;
  size_t queue_cap = 1024;
  double timeout_sec = 0.0;  // <= 0: none
  double qps = 2000.0;
  double duration_sec = 5.0;
  size_t concurrency = 8;
  size_t num_queries = 4096;
  double nnz = 12.0;
  bool dense = false;
  uint64_t seed = 1;
  bool print_metrics = false;
  std::string trace_stream_path;
  size_t flush_every = 32;
};

bool ParseOptions(int argc, char** argv, Options* out) {
  for (int i = 1; i < argc; ++i) {
    std::string flag = argv[i];
    std::string value;
    bool has_value = false;
    if (const size_t eq = flag.find('='); eq != std::string::npos) {
      value = flag.substr(eq + 1);
      flag = flag.substr(0, eq);
      has_value = true;
    }
    auto need_value = [&]() -> bool {
      if (has_value) return true;
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: %s needs a value\n", flag.c_str());
        return false;
      }
      value = argv[++i];
      return true;
    };
    if (flag == "--help") {
      std::fputs(kUsage, stdout);
      std::exit(0);
    } else if (flag == "--metrics") {
      out->print_metrics = true;
    } else if (flag == "--dense") {
      out->dense = true;
    } else if (flag == "--model") {
      if (!need_value()) return false;
      // NAME=PATH when the original argument had two '='s the first split
      // already consumed; here value may itself be NAME=PATH.
      std::string name, path;
      if (const size_t eq = value.find('='); eq != std::string::npos) {
        name = value.substr(0, eq);
        path = value.substr(eq + 1);
      } else {
        name = "model" + std::to_string(out->models.size());
        path = value;
      }
      out->models.emplace_back(name, path);
    } else if (flag == "--threads") {
      if (!need_value()) return false;
      out->threads = std::strtoul(value.c_str(), nullptr, 10);
    } else if (flag == "--batch-max") {
      if (!need_value()) return false;
      out->batch_max = std::strtoul(value.c_str(), nullptr, 10);
    } else if (flag == "--queue-cap") {
      if (!need_value()) return false;
      out->queue_cap = std::strtoul(value.c_str(), nullptr, 10);
    } else if (flag == "--timeout-sec") {
      if (!need_value()) return false;
      out->timeout_sec = std::atof(value.c_str());
    } else if (flag == "--qps") {
      if (!need_value()) return false;
      out->qps = std::atof(value.c_str());
    } else if (flag == "--duration") {
      if (!need_value()) return false;
      out->duration_sec = std::atof(value.c_str());
    } else if (flag == "--concurrency") {
      if (!need_value()) return false;
      out->concurrency = std::strtoul(value.c_str(), nullptr, 10);
    } else if (flag == "--queries") {
      if (!need_value()) return false;
      out->num_queries = std::strtoul(value.c_str(), nullptr, 10);
    } else if (flag == "--nnz") {
      if (!need_value()) return false;
      out->nnz = std::atof(value.c_str());
    } else if (flag == "--seed") {
      if (!need_value()) return false;
      out->seed = std::strtoull(value.c_str(), nullptr, 10);
    } else if (flag == "--trace-stream") {
      if (!need_value()) return false;
      out->trace_stream_path = value;
    } else if (flag == "--flush-every") {
      if (!need_value()) return false;
      out->flush_every = std::strtoul(value.c_str(), nullptr, 10);
    } else {
      std::fprintf(stderr, "error: unknown flag %s\n%s", flag.c_str(), kUsage);
      return false;
    }
  }
  if (out->models.empty()) {
    std::fprintf(stderr, "error: need at least one --model\n%s", kUsage);
    return false;
  }
  if (out->threads == 0 || out->batch_max == 0 || out->concurrency == 0 ||
      out->num_queries == 0 || out->duration_sec <= 0.0) {
    std::fprintf(stderr,
                 "error: --threads/--batch-max/--concurrency/--queries must "
                 "be positive and --duration > 0\n");
    return false;
  }
  return true;
}

struct OutcomeCounts {
  std::atomic<uint64_t> ok{0};
  std::atomic<uint64_t> shed{0};
  std::atomic<uint64_t> deadline{0};
  std::atomic<uint64_t> other{0};

  void Count(spca::serve::RequestOutcome outcome) {
    switch (outcome) {
      case spca::serve::RequestOutcome::kOk:
        ++ok;
        break;
      case spca::serve::RequestOutcome::kShed:
        ++shed;
        break;
      case spca::serve::RequestOutcome::kDeadlineExceeded:
        ++deadline;
        break;
      default:
        ++other;
        break;
    }
  }
  uint64_t Total() const { return ok + shed + deadline + other; }
};

spca::serve::ProjectionRequest MakeRequest(
    const std::string& model, const spca::workload::Query& query,
    double timeout_sec) {
  spca::serve::ProjectionRequest request;
  request.model = model;
  if (query.is_dense()) {
    request.dense = query.dense;
  } else {
    request.sparse = query.sparse;
  }
  if (timeout_sec > 0.0) request.timeout_sec = timeout_sec;
  return request;
}

/// Replays the seeded arrival schedule in real time, one Submit per
/// arrival, then waits for every response. Returns measured seconds.
double RunOpenLoop(spca::serve::ProjectionService* service,
                   const std::string& model,
                   const std::vector<spca::workload::Query>& queries,
                   const std::vector<double>& schedule, double timeout_sec,
                   OutcomeCounts* counts) {
  std::vector<std::future<spca::serve::ProjectionResponse>> futures;
  futures.reserve(schedule.size());
  const auto start = std::chrono::steady_clock::now();
  for (size_t i = 0; i < schedule.size(); ++i) {
    const auto arrival =
        start + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                    std::chrono::duration<double>(schedule[i]));
    std::this_thread::sleep_until(arrival);
    futures.push_back(service->Submit(
        MakeRequest(model, queries[i % queries.size()], timeout_sec)));
  }
  for (auto& future : futures) counts->Count(future.get().outcome);
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// --qps 0: N driver threads each keep one request outstanding until the
/// measurement window closes.
double RunClosedLoop(spca::serve::ProjectionService* service,
                     const std::string& model,
                     const std::vector<spca::workload::Query>& queries,
                     double duration_sec, size_t concurrency,
                     double timeout_sec, OutcomeCounts* counts) {
  const auto start = std::chrono::steady_clock::now();
  const auto deadline =
      start + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                  std::chrono::duration<double>(duration_sec));
  std::vector<std::thread> drivers;
  drivers.reserve(concurrency);
  for (size_t t = 0; t < concurrency; ++t) {
    drivers.emplace_back([&, t] {
      size_t i = t;  // stagger which query each driver cycles through
      while (std::chrono::steady_clock::now() < deadline) {
        auto future = service->Submit(
            MakeRequest(model, queries[i % queries.size()], timeout_sec));
        counts->Count(future.get().outcome);
        i += concurrency;
      }
    });
  }
  for (auto& driver : drivers) driver.join();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

int Main(int argc, char** argv) {
  Options options;
  if (!ParseOptions(argc, argv, &options)) return 2;

  spca::obs::Registry registry;
  spca::obs::TraceStreamer streamer(&registry, options.flush_every);
  if (!options.trace_stream_path.empty()) {
    const Status status = streamer.Open(options.trace_stream_path);
    if (!status.ok()) {
      std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
      return 1;
    }
  }

  spca::serve::ModelRegistry models(&registry);
  for (const auto& [name, path] : options.models) {
    const Status status = models.Load(name, path);
    if (!status.ok()) {
      std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
      return 1;
    }
    const auto projector = models.Get(name);
    std::printf("model %s: %s, %zu x %zu, noise variance %.6g\n",
                name.c_str(), path.c_str(), projector->input_dim(),
                projector->num_components(),
                projector->model().noise_variance);
  }
  const std::string target_model = options.models.front().first;
  const size_t dim = models.Get(target_model)->input_dim();

  spca::workload::QuerySetConfig query_config;
  query_config.num_queries = options.num_queries;
  query_config.dim = dim;
  query_config.dense = options.dense;
  query_config.nnz_per_query = options.nnz;
  query_config.seed = options.seed;
  const std::vector<spca::workload::Query> queries =
      spca::workload::GenerateQueries(query_config);

  spca::serve::ServiceOptions service_options;
  service_options.num_threads = options.threads;
  service_options.batch_max = options.batch_max;
  service_options.queue_capacity = options.queue_cap;
  service_options.metrics = &registry;
  // The dispatcher is the only thread completing "jobs" here, so it may
  // drive the streaming exporter directly.
  service_options.notify_job_listener = streamer.is_open();
  spca::serve::ProjectionService service(&models, service_options);
  {
    const Status status = service.Start();
    if (!status.ok()) {
      std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
      return 1;
    }
  }

  OutcomeCounts counts;
  double elapsed;
  if (options.qps > 0.0) {
    spca::workload::ArrivalScheduleConfig schedule_config;
    schedule_config.qps = options.qps;
    schedule_config.num_arrivals = static_cast<size_t>(options.qps *
                                                       options.duration_sec);
    schedule_config.seed = options.seed;
    const std::vector<double> schedule =
        spca::workload::GenerateArrivalSchedule(schedule_config);
    std::printf("open loop: %zu arrivals at %.0f qps offered (seed %llu)\n",
                schedule.size(), options.qps,
                static_cast<unsigned long long>(options.seed));
    elapsed = RunOpenLoop(&service, target_model, queries, schedule,
                          options.timeout_sec, &counts);
  } else {
    std::printf("closed loop: %zu outstanding for %.1f s\n",
                options.concurrency, options.duration_sec);
    elapsed = RunClosedLoop(&service, target_model, queries,
                            options.duration_sec, options.concurrency,
                            options.timeout_sec, &counts);
  }
  service.Stop();

  const auto* latency = registry.FindHistogram("serve.latency_sec");
  const auto* batches = registry.FindCounter("serve.batches");
  std::printf(
      "served %llu requests in %.2f s: %llu ok (%.0f qps), %llu shed, "
      "%llu deadline-exceeded, %llu other\n",
      static_cast<unsigned long long>(counts.Total()), elapsed,
      static_cast<unsigned long long>(counts.ok.load()),
      static_cast<double>(counts.ok.load()) / elapsed,
      static_cast<unsigned long long>(counts.shed.load()),
      static_cast<unsigned long long>(counts.deadline.load()),
      static_cast<unsigned long long>(counts.other.load()));
  if (latency != nullptr && latency->count() > 0) {
    std::printf("latency: p50 %.3f ms, p95 %.3f ms, p99 %.3f ms, max %.3f ms "
                "(%llu batches, mean batch %.1f)\n",
                1e3 * latency->Quantile(0.50), 1e3 * latency->Quantile(0.95),
                1e3 * latency->Quantile(0.99), 1e3 * latency->max(),
                static_cast<unsigned long long>(
                    batches != nullptr ? batches->AsUint64() : 0),
                batches != nullptr && batches->value() > 0
                    ? static_cast<double>(counts.ok.load()) / batches->value()
                    : 0.0);
  }

  if (streamer.is_open()) {
    const Status status = streamer.Close();
    if (!status.ok()) {
      std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
      return 1;
    }
    std::printf("streamed %zu spans in %zu flushes to %s\n",
                streamer.spans_written(), streamer.flushes(),
                streamer.path().c_str());
  }
  if (options.print_metrics) {
    // Age gauges are only as fresh as the last swap; re-publish them so the
    // table shows each model's age as of now.
    models.RefreshAgeMetrics();
    std::printf("\n%s", spca::obs::MetricsTable(registry).c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return Main(argc, argv); }
